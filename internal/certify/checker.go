// Package certify independently verifies the claims Engage's
// configuration pipeline makes: SAT models, DRAT-style UNSAT proofs,
// MUS conflict stories, and solver-free plan-level invariants on
// resolved installation specifications and stack records.
//
// The package deliberately shares no code with the CDCL solver. Its
// whole trusted base is a dumb two-watched-literal unit propagator
// (this file) plus clause evaluation: a proof is replayed step by step
// and each lemma is accepted only if asserting its negation and
// propagating yields a conflict (reverse unit propagation, RUP). A bug
// in the solver's learning, exchange, or deletion logic therefore
// surfaces as a refuted proof instead of a wrong deployment.
package certify

import (
	"fmt"
	"sort"
	"strings"

	"engage/internal/sat"
)

// CheckStats reports the effort and shape of one proof check.
type CheckStats struct {
	Lemmas       int   // accepted RUP lemmas
	Inputs       int   // trusted input clauses installed
	Deletes      int   // deletions applied
	SkippedDel   int   // deletions skipped (clause is a root reason)
	MissingDel   int   // deletions with no matching clause
	Propagations int64 // literals propagated across all checks
}

// Literal codes: variable v ≥ 1 maps to 2v (positive) and 2v+1
// (negated), mirroring nothing of the solver — it is just the standard
// dense encoding for watch lists.
func code(l sat.Lit) int32 {
	v := int32(l.Var())
	if l < 0 {
		return 2*v + 1
	}
	return 2 * v
}

func negCode(c int32) int32 { return c ^ 1 }
func codeVar(c int32) int32 { return c >> 1 }
func codeSign(c int32) bool { return c&1 == 1 }
func codeLit(c int32) sat.Lit {
	l := sat.Lit(codeVar(c))
	if codeSign(c) {
		return -l
	}
	return l
}

const (
	cvUnassigned int8 = 0
	cvTrue       int8 = 1
	cvFalse      int8 = -1
)

const noReason = int32(-1)

// checker is the dumb propagator: a clause database with two watched
// literals per clause, a root trail of permanent consequences, and a
// scratch mode where asserted literals and their propagations are
// undone after each RUP query.
type checker struct {
	nVars   int
	clauses [][]int32 // coded, sorted, deduped; nil = deleted slot
	watches [][]int32 // per literal code: clause indices watching it
	byKey   map[string][]int32

	assign []int8  // per variable
	reason []int32 // clause index that forced a root assignment
	trail  []int32
	qhead  int

	rootConflict bool
	stats        CheckStats
}

func newChecker(nVars int) *checker {
	c := &checker{byKey: map[string][]int32{}}
	c.ensureVars(nVars)
	return c
}

func (c *checker) ensureVars(n int) {
	if n <= c.nVars {
		return
	}
	for len(c.watches) < 2*(n+1) {
		c.watches = append(c.watches, nil)
	}
	for len(c.assign) < n+1 {
		c.assign = append(c.assign, cvUnassigned)
		c.reason = append(c.reason, noReason)
	}
	c.nVars = n
}

func (c *checker) value(code int32) int8 {
	v := c.assign[codeVar(code)]
	if v == cvUnassigned {
		return cvUnassigned
	}
	if codeSign(code) {
		return -v
	}
	return v
}

func (c *checker) enqueue(code int32, reason int32) {
	v := codeVar(code)
	if codeSign(code) {
		c.assign[v] = cvFalse
	} else {
		c.assign[v] = cvTrue
	}
	c.reason[v] = reason
	c.trail = append(c.trail, code)
}

// clauseKey is the multiset identity used to match "d" steps against
// installed clauses.
func clauseKey(codes []int32) string {
	var b strings.Builder
	for i, cd := range codes {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", cd)
	}
	return b.String()
}

// normalize maps external literals to sorted, deduplicated codes;
// ok=false marks a tautology (always satisfied, never installed).
func (c *checker) normalize(lits []sat.Lit) (codes []int32, ok bool) {
	codes = make([]int32, 0, len(lits))
	maxVar := 0
	for _, l := range lits {
		if l.Var() > maxVar {
			maxVar = l.Var()
		}
		codes = append(codes, code(l))
	}
	c.ensureVars(maxVar)
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	out := codes[:0]
	var prev int32 = -2
	for _, cd := range codes {
		if cd == prev {
			continue
		}
		if cd == negCode(prev) {
			return nil, false
		}
		out = append(out, cd)
		prev = cd
	}
	return out, true
}

// addClause installs a clause (original, input, or accepted lemma) and
// propagates its root consequences. Tautologies are skipped.
func (c *checker) addClause(lits []sat.Lit) {
	codes, ok := c.normalize(lits)
	if !ok {
		return
	}
	if len(codes) == 0 {
		c.rootConflict = true
		return
	}
	idx := int32(len(c.clauses))
	c.clauses = append(c.clauses, codes)
	key := clauseKey(codes)
	c.byKey[key] = append(c.byKey[key], idx)

	if len(codes) == 1 {
		switch c.value(codes[0]) {
		case cvFalse:
			c.rootConflict = true
		case cvUnassigned:
			c.enqueue(codes[0], idx)
			if !c.propagate() {
				c.rootConflict = true
			}
		}
		return
	}
	// Watch two non-false literals when possible; with exactly one
	// non-false literal the clause is unit under the root assignment.
	w0, w1 := -1, -1
	for i, cd := range codes {
		if c.value(cd) != cvFalse {
			if w0 < 0 {
				w0 = i
			} else if w1 < 0 {
				w1 = i
				break
			}
		}
	}
	switch {
	case w0 < 0:
		c.rootConflict = true
		// Watch the first two literals anyway so the slot stays well
		// formed for deletion bookkeeping.
		w0, w1 = 0, 1
	case w1 < 0:
		// Unit under the root assignment: enqueue unless already true.
		if c.value(codes[w0]) == cvUnassigned {
			c.enqueue(codes[w0], idx)
		}
		w1 = 0
		if w0 == 0 {
			w1 = 1
		}
	}
	codes[0], codes[w0] = codes[w0], codes[0]
	if w1 == 0 {
		w1 = w0 // the literal originally at 0 moved to w0
	}
	codes[1], codes[w1] = codes[w1], codes[1]
	c.watches[codes[0]] = append(c.watches[codes[0]], idx)
	c.watches[codes[1]] = append(c.watches[codes[1]], idx)
	if !c.propagate() {
		c.rootConflict = true
	}
}

// deleteClause applies a "d" step. A clause that is currently the
// reason of a root assignment is kept (skipping a deletion is always
// sound — every installed clause is implied); a clause that was never
// installed counts as missing and is ignored.
func (c *checker) deleteClause(lits []sat.Lit) {
	codes, ok := c.normalize(lits)
	if !ok {
		c.stats.MissingDel++
		return
	}
	key := clauseKey(codes)
	idxs := c.byKey[key]
	if len(idxs) == 0 {
		c.stats.MissingDel++
		return
	}
	idx := idxs[len(idxs)-1]
	cl := c.clauses[idx]
	for _, cd := range cl {
		if c.value(cd) == cvTrue && c.reason[codeVar(cd)] == idx {
			c.stats.SkippedDel++
			return
		}
	}
	c.byKey[key] = idxs[:len(idxs)-1]
	c.clauses[idx] = nil // watch entries are skipped lazily
	c.stats.Deletes++
}

// propagate runs unit propagation from the current queue head; it
// reports false on conflict. Watch lists are repaired in place; deleted
// clauses are filtered out as they are encountered.
func (c *checker) propagate() bool {
	for c.qhead < len(c.trail) {
		p := c.trail[c.qhead] // p is true, ¬p is falsified
		c.qhead++
		np := negCode(p)
		ws := c.watches[np]
		j := 0
		for i := 0; i < len(ws); i++ {
			idx := ws[i]
			cl := c.clauses[idx]
			if cl == nil {
				continue // deleted; drop the stale watch entry
			}
			c.stats.Propagations++
			if cl[0] == np {
				cl[0], cl[1] = cl[1], cl[0]
			}
			first := cl[0]
			if c.value(first) == cvTrue {
				ws[j] = idx
				j++
				continue
			}
			moved := false
			for k := 2; k < len(cl); k++ {
				if c.value(cl[k]) != cvFalse {
					cl[1], cl[k] = cl[k], cl[1]
					c.watches[cl[1]] = append(c.watches[cl[1]], idx)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			ws[j] = idx
			j++
			if c.value(first) == cvFalse {
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				c.watches[np] = ws[:j]
				c.qhead = len(c.trail)
				return false
			}
			c.enqueue(first, idx)
		}
		c.watches[np] = ws[:j]
	}
	return true
}

// rup reports whether the clause is a reverse-unit-propagation
// consequence of the current database: asserting the negation of every
// literal and propagating must yield a conflict. The trail is restored
// before returning.
func (c *checker) rup(lits []sat.Lit) bool {
	if c.rootConflict {
		return true
	}
	maxVar := 0
	for _, l := range lits {
		if l.Var() > maxVar {
			maxVar = l.Var()
		}
	}
	c.ensureVars(maxVar)
	mark := len(c.trail)
	conflict := false
	for _, l := range lits {
		cd := code(l)
		switch c.value(cd) {
		case cvTrue:
			// The literal already holds, so its negation is immediately
			// contradicted.
			conflict = true
		case cvUnassigned:
			c.enqueue(negCode(cd), noReason)
		}
		if conflict {
			break
		}
	}
	if !conflict {
		conflict = !c.propagate()
	}
	// Undo everything above the mark; root assignments stay.
	for i := len(c.trail) - 1; i >= mark; i-- {
		v := codeVar(c.trail[i])
		c.assign[v] = cvUnassigned
		c.reason[v] = noReason
	}
	c.trail = c.trail[:mark]
	c.qhead = mark
	return conflict
}
