package certify

// Stack-record verification: confirm a named desired-state record's
// binding invariants without touching the solver or the live world —
// bindings and instances are in bijection, every binding sits on the
// machine its instance resolved to, manifest paths and contents match
// the canonical rendering, and (given a liveness snapshot) recorded
// daemon PIDs are still running.

import (
	"sort"

	"engage/internal/lint"
	"engage/internal/stack"
)

// CheckStack verifies a stack record's binding invariants. The running
// map is an optional liveness snapshot keyed by instance ID (as from
// monitor.Snapshot: entry present and false means the recorded daemon
// is known dead; absent means unobserved and is not judged); nil skips
// liveness entirely. Findings are plan-binding lint diagnostics; an
// empty result certifies the record.
func CheckStack(st *stack.Stack, running map[string]bool) []lint.Diagnostic {
	r := &planReport{}
	if st.Name == "" {
		r.add(lint.CodePlanBinding, "", "", "stack record has no name")
	}
	if st.Desired == nil {
		r.add(lint.CodePlanBinding, "", st.Name, "stack %q has no desired specification", st.Name)
		return r.diags
	}

	machines := map[string]bool{}
	for _, inst := range st.Desired.Instances {
		if inst.Inside == "" {
			machines[inst.ID] = true
		}
	}

	bound := map[string]bool{}
	for _, inst := range st.Desired.Instances {
		b, ok := st.Bindings[inst.ID]
		if !ok {
			r.add(lint.CodePlanBinding, "", inst.ID, "instance %q has no binding in stack %q", inst.ID, st.Name)
			continue
		}
		bound[inst.ID] = true
		if b.Instance != inst.ID {
			r.add(lint.CodePlanBinding, "", inst.ID, "binding for %q names instance %q", inst.ID, b.Instance)
		}
		if b.Machine != inst.Machine {
			r.add(lint.CodePlanBinding, "", inst.ID, "instance %q is bound to machine %q but resolved to %q", inst.ID, b.Machine, inst.Machine)
		}
		if !machines[b.Machine] {
			r.add(lint.CodePlanBinding, "", inst.ID, "instance %q is bound to machine %q, which is not a machine of the stack", inst.ID, b.Machine)
		}
		if want := stack.ManifestPath(st.Name, inst.ID); b.ManifestPath != want {
			r.add(lint.CodePlanBinding, "", inst.ID, "instance %q manifest path %q, want %q", inst.ID, b.ManifestPath, want)
		}
		if want := stack.ManifestFor(inst); b.Manifest != want {
			r.add(lint.CodePlanBinding, "", inst.ID, "instance %q manifest content diverges from the canonical rendering of its configuration", inst.ID)
		}
		if b.PID > 0 && running != nil {
			if alive, observed := running[inst.ID]; observed && !alive {
				r.add(lint.CodePlanBinding, "", inst.ID, "instance %q records daemon PID %d, which the monitor snapshot reports dead", inst.ID, b.PID)
			}
		}
	}
	for _, id := range sortedBindingKeys(st.Bindings) {
		if !bound[id] {
			r.add(lint.CodePlanBinding, "", id, "stack %q binds %q, which is not a desired instance", st.Name, id)
		}
	}
	return r.diags
}

func sortedBindingKeys(m map[string]stack.Binding) []string {
	out := make([]string, 0, len(m))
	for k := range m { //engage:maporder — collected then sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
