package constraint

import (
	"testing"

	"engage/internal/hypergraph"
	"engage/internal/sat"
	"engage/internal/testlib"
)

func fig5Graph(t *testing.T) *hypergraph.Graph {
	t.Helper()
	reg, err := testlib.OpenMRSRegistry()
	if err != nil {
		t.Fatal(err)
	}
	p, err := testlib.Fig2Partial()
	if err != nil {
		t.Fatal(err)
	}
	g, err := hypergraph.Generate(reg, p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSection2Constraints encodes Fig. 5 and checks the solution matches
// §2: server, tomcat, openmrs, mysql all deployed; exactly one of
// jdk/jre.
func TestSection2Constraints(t *testing.T) {
	g := fig5Graph(t)
	for _, enc := range []Encoding{Pairwise, Ladder} {
		p := Encode(g, enc)
		r := sat.NewCDCL().Solve(p.Formula)
		if r.Status != sat.Sat {
			t.Fatalf("%v: §2 constraints should be SAT", enc)
		}
		sel := p.Selected(r.Model)
		for _, id := range []string{"server", "tomcat", "openmrs"} {
			if !sel[id] {
				t.Errorf("%v: spec node %q must be selected", enc, id)
			}
		}
		var mysqlID, jdkID, jreID string
		for _, n := range g.Nodes() {
			switch n.Key.Name {
			case "MySQL":
				mysqlID = n.ID
			case "JDK":
				jdkID = n.ID
			case "JRE":
				jreID = n.ID
			}
		}
		if !sel[mysqlID] {
			t.Errorf("%v: mysql must be selected (peer dep)", enc)
		}
		if sel[jdkID] == sel[jreID] {
			t.Errorf("%v: exactly one of jdk/jre must be selected: jdk=%v jre=%v",
				enc, sel[jdkID], sel[jreID])
		}
	}
}

func TestEncodingSizes(t *testing.T) {
	g := fig5Graph(t)
	pw := Encode(g, Pairwise)
	ld := Encode(g, Ladder)
	if pw.Formula.NumVars != g.Len() {
		t.Errorf("pairwise should add no aux vars: %d vs %d", pw.Formula.NumVars, g.Len())
	}
	if ld.Formula.NumVars < pw.Formula.NumVars {
		t.Errorf("ladder cannot have fewer vars than pairwise")
	}
	if len(pw.Formula.Clauses) == 0 {
		t.Fatal("no clauses generated")
	}
}

func TestVarMappingBijective(t *testing.T) {
	g := fig5Graph(t)
	p := Encode(g, Pairwise)
	if len(p.VarOf) != g.Len() {
		t.Fatalf("VarOf size %d, want %d", len(p.VarOf), g.Len())
	}
	seen := make(map[int]bool)
	for id, v := range p.VarOf {
		if seen[v] {
			t.Errorf("variable %d assigned twice", v)
		}
		seen[v] = true
		if p.IDOf[v] != id {
			t.Errorf("IDOf[%d] = %q, want %q", v, p.IDOf[v], id)
		}
	}
}

func TestUnsatisfiableConflict(t *testing.T) {
	// Craft a graph with an impossible obligation: a spec node with a
	// hyperedge whose only target is... itself excluded via another
	// edge. Simplest: node a requires exactly-one of {b}, and node b
	// requires exactly-one of {} (empty disjunction = false).
	g := graphWith(t, []nodeSpec{
		{"a", true}, {"b", false},
	}, []hypergraph.Hyperedge{
		{Source: "a", Targets: []string{"b"}},
		{Source: "b", Targets: nil},
	})
	p := Encode(g, Pairwise)
	r := sat.NewCDCL().Solve(p.Formula)
	if r.Status != sat.Unsat {
		t.Errorf("empty-disjunction obligation should be UNSAT, got %v", r.Status)
	}
}

// graphWith builds a synthetic hypergraph via Generate-free construction
// — exercising Encode in isolation. We reuse the exported surface only.
type nodeSpec struct {
	id       string
	fromSpec bool
}

func graphWith(t *testing.T, nodes []nodeSpec, edges []hypergraph.Hyperedge) *hypergraph.Graph {
	t.Helper()
	g := hypergraph.NewGraph()
	for _, n := range nodes {
		g.AddNode(&hypergraph.Node{ID: n.id, FromSpec: n.fromSpec})
	}
	for _, e := range edges {
		g.AddEdge(e)
	}
	return g
}

func TestChosenTarget(t *testing.T) {
	e := hypergraph.Hyperedge{Source: "s", Targets: []string{"a", "b"}}
	if got, err := ChosenTarget(e, map[string]bool{"a": true}); err != nil || got != "a" {
		t.Errorf("ChosenTarget = %q, %v", got, err)
	}
	if _, err := ChosenTarget(e, map[string]bool{"a": true, "b": true}); err == nil {
		t.Error("two selected targets should error")
	}
	if _, err := ChosenTarget(e, map[string]bool{}); err == nil {
		t.Error("no selected target should error")
	}
}

func TestMinimalModel(t *testing.T) {
	// Unforced nodes must not appear in the solution: encode a graph
	// where node "extra" exists but nothing requires it.
	g := graphWith(t, []nodeSpec{
		{"a", true}, {"extra", false},
	}, nil)
	p := Encode(g, Pairwise)
	r := sat.NewCDCL().Solve(p.Formula)
	if r.Status != sat.Sat {
		t.Fatal("should be SAT")
	}
	sel := p.Selected(r.Model)
	if !sel["a"] {
		t.Error("spec node must be selected")
	}
	if sel["extra"] {
		t.Error("unforced node should not be selected (minimal model)")
	}
}

func TestLadderLargeDisjunction(t *testing.T) {
	// 8 alternatives: ladder kicks in (n > 3). Both encodings agree.
	nodes := []nodeSpec{{"src", true}}
	targets := make([]string, 8)
	for i := range targets {
		targets[i] = string(rune('a' + i))
		nodes = append(nodes, nodeSpec{targets[i], false})
	}
	edges := []hypergraph.Hyperedge{{Source: "src", Targets: targets}}

	for _, enc := range []Encoding{Pairwise, Ladder} {
		g := graphWith(t, nodes, edges)
		p := Encode(g, enc)
		r := sat.NewCDCL().Solve(p.Formula)
		if r.Status != sat.Sat {
			t.Fatalf("%v: should be SAT", enc)
		}
		sel := p.Selected(r.Model)
		count := 0
		for _, tg := range targets {
			if sel[tg] {
				count++
			}
		}
		if count != 1 {
			t.Errorf("%v: exactly one target must be selected, got %d", enc, count)
		}
	}
}

func TestEncodingString(t *testing.T) {
	if Pairwise.String() != "pairwise" || Ladder.String() != "ladder" {
		t.Error("encoding names wrong")
	}
	if Encoding(9).String() != "encoding?" {
		t.Error("unknown encoding placeholder")
	}
}
