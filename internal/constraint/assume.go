package constraint

// This file is the provenance-carrying variant of Encode, built for
// static diagnostics: every constraint group — one per partial-spec
// instance, one per dependency hyperedge — is guarded by a fresh
// selector variable instead of being asserted outright. Solving under
// the assumption "all selectors true" is equivalent to solving the
// plain encoding, but an Unsat answer now comes with an assumption
// core naming the guilty groups, which internal/lint shrinks to a
// minimal unsatisfiable subset and translates back into resources,
// versions, and dependency edges (the constraint → hyperedge →
// resource mapping the lint engine's conflict stories are built from).

import (
	"engage/internal/hypergraph"
	"engage/internal/sat"
)

// GroupKind says what kind of constraint a selector guards.
type GroupKind int

// The group kinds.
const (
	// GroupSpec guards the unit constraint rsrc(v) of one partial-spec
	// instance.
	GroupSpec GroupKind = iota
	// GroupEdge guards the exactly-one constraint of one dependency
	// hyperedge.
	GroupEdge
)

func (k GroupKind) String() string {
	switch k {
	case GroupSpec:
		return "spec"
	case GroupEdge:
		return "edge"
	default:
		return "group?"
	}
}

// Group is the provenance of one guarded constraint group.
type Group struct {
	Kind GroupKind
	// Instance is the node ID whose unit constraint this is (GroupSpec)
	// or the hyperedge's source node ID (GroupEdge).
	Instance string
	// Edge indexes the hyperedge in the graph's Edges slice (GroupEdge
	// only; -1 for GroupSpec).
	Edge int
}

// AssumableProblem is a generated SAT problem whose constraint groups
// are individually switchable through assumption literals.
type AssumableProblem struct {
	*Problem
	// Selectors holds one positive literal per group; assuming all of
	// them reproduces the plain encoding. Selector variables map to ""
	// in IDOf.
	Selectors []sat.Lit
	// Groups[i] is the provenance of Selectors[i].
	Groups []Group
	// groupOf maps a selector variable back to its group index.
	groupOf map[int]int
}

// GroupFor returns the provenance of a selector literal (by variable).
func (p *AssumableProblem) GroupFor(l sat.Lit) (Group, bool) {
	i, ok := p.groupOf[l.Var()]
	if !ok {
		return Group{}, false
	}
	return p.Groups[i], true
}

// EncodeAssumable generates the Boolean constraints for a hypergraph
// with one selector variable per constraint group. The node↔variable
// mapping is identical to Encode's; selectors and encoding auxiliaries
// are appended after the node variables.
func EncodeAssumable(g *hypergraph.Graph, enc Encoding) *AssumableProblem {
	f := sat.NewFormula(g.Len())
	p := &AssumableProblem{
		Problem: &Problem{
			Formula: f,
			VarOf:   make(map[string]int, g.Len()),
			IDOf:    make([]string, g.Len()+1),
		},
		groupOf: make(map[int]int),
	}
	for i, id := range g.Order {
		v := i + 1
		p.VarOf[id] = v
		p.IDOf[v] = id
	}

	addGroup := func(gr Group) sat.Lit {
		s := sat.Lit(f.AddVar())
		p.groupOf[s.Var()] = len(p.Groups)
		p.Selectors = append(p.Selectors, s)
		p.Groups = append(p.Groups, gr)
		return s
	}

	// Unit constraints for partial-spec instances: s → rsrc(v).
	for _, n := range g.Nodes() {
		if n.FromSpec {
			s := addGroup(Group{Kind: GroupSpec, Instance: n.ID, Edge: -1})
			f.Add(s.Neg(), sat.Lit(p.VarOf[n.ID]))
		}
	}

	// Dependency constraints, one guarded group per hyperedge.
	for ei, e := range g.Edges {
		s := addGroup(Group{Kind: GroupEdge, Instance: e.Source, Edge: ei})
		src := sat.Lit(p.VarOf[e.Source])
		lits := make([]sat.Lit, len(e.Targets))
		for i, t := range e.Targets {
			lits[i] = sat.Lit(p.VarOf[t])
		}
		addGuardedImpliesExactlyOne(f, enc, s, src, lits)
	}

	for len(p.IDOf) < f.NumVars+1 {
		p.IDOf = append(p.IDOf, "")
	}
	return p
}

// addGuardedImpliesExactlyOne encodes s → (src → ⊕lits): the plain
// encoding of Encode with ¬s added to every clause, so dropping the s
// assumption disables the whole group.
func addGuardedImpliesExactlyOne(f *sat.Formula, enc Encoding, s, src sat.Lit, lits []sat.Lit) {
	guard := s.Neg()
	if enc == Ladder && len(lits) > 3 {
		// Sequential at-most-one over lits, every clause carrying both
		// the group guard and ¬src (mirrors addImpliesExactlyOneLadder).
		n := len(lits)
		c := make([]sat.Lit, 0, n+2)
		c = append(c, guard, src.Neg())
		c = append(c, lits...)
		f.Add(c...)
		aux := make([]sat.Lit, n-1)
		for i := range aux {
			aux[i] = sat.Lit(f.AddVar())
		}
		f.Add(guard, src.Neg(), lits[0].Neg(), aux[0])
		for i := 1; i < n-1; i++ {
			f.Add(guard, src.Neg(), aux[i-1].Neg(), aux[i])
			f.Add(guard, src.Neg(), lits[i].Neg(), aux[i])
			f.Add(guard, src.Neg(), lits[i].Neg(), aux[i-1].Neg())
		}
		f.Add(guard, src.Neg(), lits[n-1].Neg(), aux[n-2].Neg())
		return
	}
	// Pairwise: at-least-one plus guarded at-most-one pairs.
	c := make([]sat.Lit, 0, len(lits)+2)
	c = append(c, guard, src.Neg())
	c = append(c, lits...)
	f.Add(c...)
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			f.Add(guard, src.Neg(), lits[i].Neg(), lits[j].Neg())
		}
	}
}
