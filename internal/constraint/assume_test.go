package constraint

import (
	"testing"

	"engage/internal/hypergraph"
	"engage/internal/sat"
)

// conflictGraph builds the canonical unsatisfiable shape: app's edge
// must choose exactly one of db1/db2, but both are spec-pinned.
func conflictGraph() *hypergraph.Graph {
	g := hypergraph.NewGraph()
	g.AddNode(&hypergraph.Node{ID: "app", FromSpec: true})
	g.AddNode(&hypergraph.Node{ID: "db1", FromSpec: true})
	g.AddNode(&hypergraph.Node{ID: "db2", FromSpec: true})
	g.AddEdge(hypergraph.Hyperedge{Source: "app", Targets: []string{"db1", "db2"}})
	return g
}

// satGraph is the same shape with only one pinned target.
func satGraph() *hypergraph.Graph {
	g := hypergraph.NewGraph()
	g.AddNode(&hypergraph.Node{ID: "app", FromSpec: true})
	g.AddNode(&hypergraph.Node{ID: "db1", FromSpec: true})
	g.AddNode(&hypergraph.Node{ID: "db2"})
	g.AddEdge(hypergraph.Hyperedge{Source: "app", Targets: []string{"db1", "db2"}})
	return g
}

func TestEncodeAssumableAgreesWithEncode(t *testing.T) {
	for _, enc := range []Encoding{Pairwise, Ladder} {
		for _, tc := range []struct {
			name string
			g    *hypergraph.Graph
			want sat.Status
		}{
			{"unsat", conflictGraph(), sat.Unsat},
			{"sat", satGraph(), sat.Sat},
		} {
			t.Run(enc.String()+"/"+tc.name, func(t *testing.T) {
				plain := Encode(tc.g, enc)
				if res := sat.NewCDCL().Solve(plain.Formula); res.Status != tc.want {
					t.Fatalf("plain encoding: %v, want %v", res.Status, tc.want)
				}
				ap := EncodeAssumable(tc.g, enc)
				inc := sat.StartIncremental(sat.NewCDCL(), ap.Formula)
				res := inc.SolveAssuming(ap.Selectors)
				if res.Status != tc.want {
					t.Fatalf("assumable encoding under all selectors: %v, want %v", res.Status, tc.want)
				}
				if tc.want == sat.Unsat {
					if len(res.Core) == 0 {
						t.Fatalf("unsat without an assumption core")
					}
					for _, l := range res.Core {
						if _, ok := ap.GroupFor(l); !ok {
							t.Fatalf("core literal %v has no provenance group", l)
						}
					}
				}
			})
		}
	}
}

// TestEncodeAssumableProvenance pins the group bookkeeping: one spec
// group per pinned node, one edge group per hyperedge, all resolvable
// through GroupFor, and selector variables invisible in IDOf.
func TestEncodeAssumableProvenance(t *testing.T) {
	g := conflictGraph()
	ap := EncodeAssumable(g, Pairwise)
	if len(ap.Groups) != 4 || len(ap.Selectors) != 4 {
		t.Fatalf("got %d groups / %d selectors, want 4 spec+edge groups", len(ap.Groups), len(ap.Selectors))
	}
	spec, edge := 0, 0
	for i, gr := range ap.Groups {
		sel := ap.Selectors[i]
		got, ok := ap.GroupFor(sel)
		if !ok || got != gr {
			t.Fatalf("GroupFor(%v) = %+v, %v; want %+v", sel, got, ok, gr)
		}
		if ap.IDOf[sel.Var()] != "" {
			t.Fatalf("selector var %d maps to node %q in IDOf", sel.Var(), ap.IDOf[sel.Var()])
		}
		switch gr.Kind {
		case GroupSpec:
			spec++
			if gr.Edge != -1 {
				t.Fatalf("spec group with edge index %d", gr.Edge)
			}
		case GroupEdge:
			edge++
			if gr.Instance != "app" || gr.Edge != 0 {
				t.Fatalf("edge group = %+v, want source app, edge 0", gr)
			}
		}
	}
	if spec != 3 || edge != 1 {
		t.Fatalf("got %d spec / %d edge groups, want 3 / 1", spec, edge)
	}
}
