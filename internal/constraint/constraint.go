// Package constraint implements the constraint-generation phase of
// Engage's configuration engine (§4 of the paper): translating a
// dependency hypergraph into Boolean constraints whose satisfying
// assignments are exactly the full installation specifications extending
// the partial specification (Theorem 1).
//
// For each node v mentioned in the partial install specification it
// emits the unit constraint rsrc(v); for each hyperedge with source v
// and targets {v1,…,vn} it emits rsrc(v) → ⊕{rsrc(v1),…,rsrc(vn)}, where
// ⊕S is the exactly-one predicate.
package constraint

import (
	"fmt"

	"engage/internal/hypergraph"
	"engage/internal/sat"
)

// Encoding selects the CNF encoding of the exactly-one predicate.
type Encoding int

// Encodings of ⊕S.
const (
	// Pairwise is the paper's quadratic encoding:
	// (∨ pi) ∧ ∧_{p≠q} (¬p ∨ ¬q).
	Pairwise Encoding = iota
	// Ladder is the linear sequential encoding with auxiliary
	// variables; functionally equivalent, used by ablation bench A2.
	Ladder
)

func (e Encoding) String() string {
	switch e {
	case Pairwise:
		return "pairwise"
	case Ladder:
		return "ladder"
	default:
		return "encoding?"
	}
}

// Problem is a generated SAT problem with the node↔variable mapping.
type Problem struct {
	Formula *sat.Formula
	// VarOf maps a node ID to its propositional variable.
	VarOf map[string]int
	// IDOf maps a variable (1-based) back to its node ID; auxiliary
	// variables introduced by the ladder encoding map to "".
	IDOf []string
}

// Encode generates the Boolean constraints for a hypergraph.
func Encode(g *hypergraph.Graph, enc Encoding) *Problem {
	f := sat.NewFormula(g.Len())
	p := &Problem{
		Formula: f,
		VarOf:   make(map[string]int, g.Len()),
		IDOf:    make([]string, g.Len()+1),
	}
	for i, id := range g.Order {
		v := i + 1
		p.VarOf[id] = v
		p.IDOf[v] = id
	}

	// Unit constraints for partial-spec instances.
	for _, n := range g.Nodes() {
		if n.FromSpec {
			f.AddUnit(sat.Lit(p.VarOf[n.ID]))
		}
	}

	// Dependency constraints, one per hyperedge.
	for _, e := range g.Edges {
		src := sat.Lit(p.VarOf[e.Source])
		lits := make([]sat.Lit, len(e.Targets))
		for i, t := range e.Targets {
			lits[i] = sat.Lit(p.VarOf[t])
		}
		switch enc {
		case Pairwise:
			f.AddImpliesExactlyOne(src, lits...)
		case Ladder:
			addImpliesExactlyOneLadder(f, src, lits)
		}
	}

	// Grow IDOf for any auxiliary variables added by the ladder.
	for len(p.IDOf) < f.NumVars+1 {
		p.IDOf = append(p.IDOf, "")
	}
	return p
}

// addImpliesExactlyOneLadder encodes src → ⊕lits with the sequential
// encoding: a fresh guard g with (¬src ∨ g) reduces the conditional form
// to an unconditional exactly-one over guarded literals. Concretely we
// introduce the ladder over lits with every clause augmented by ¬src.
func addImpliesExactlyOneLadder(f *sat.Formula, src sat.Lit, lits []sat.Lit) {
	n := len(lits)
	if n <= 3 {
		f.AddImpliesExactlyOne(src, lits...)
		return
	}
	// At-least-one: (¬src ∨ l1 ∨ … ∨ ln).
	c := make([]sat.Lit, 0, n+1)
	c = append(c, src.Neg())
	c = append(c, lits...)
	f.Add(c...)
	// Sequential at-most-one, guarded by src.
	s := make([]sat.Lit, n-1)
	for i := range s {
		s[i] = sat.Lit(f.AddVar())
	}
	f.Add(src.Neg(), lits[0].Neg(), s[0])
	for i := 1; i < n-1; i++ {
		f.Add(src.Neg(), s[i-1].Neg(), s[i])
		f.Add(src.Neg(), lits[i].Neg(), s[i])
		f.Add(src.Neg(), lits[i].Neg(), s[i-1].Neg())
	}
	f.Add(src.Neg(), lits[n-1].Neg(), s[n-2].Neg())
}

// Selected extracts the set of deployed node IDs from a model.
func (p *Problem) Selected(model []bool) map[string]bool {
	out := make(map[string]bool)
	for v := 1; v < len(model) && v < len(p.IDOf); v++ {
		if model[v] && p.IDOf[v] != "" {
			out[p.IDOf[v]] = true
		}
	}
	return out
}

// ChosenTarget returns the unique selected target of a hyperedge whose
// source is selected; it errors if zero or multiple targets are selected
// (which a correct model cannot produce).
func ChosenTarget(e hypergraph.Hyperedge, selected map[string]bool) (string, error) {
	chosen := ""
	for _, t := range e.Targets {
		if selected[t] {
			if chosen != "" {
				return "", fmt.Errorf("constraint: hyperedge from %q has two selected targets (%q, %q)",
					e.Source, chosen, t)
			}
			chosen = t
		}
	}
	if chosen == "" {
		return "", fmt.Errorf("constraint: hyperedge from %q has no selected target", e.Source)
	}
	return chosen, nil
}
