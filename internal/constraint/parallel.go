package constraint

import (
	"fmt"

	"engage/internal/conc"
	"engage/internal/hypergraph"
	"engage/internal/sat"
	"engage/internal/telemetry"
)

// EncodeParallel generates the same Problem as Encode — identical clause
// list, literal order, and variable numbering — but shards clause
// emission per hyperedge across a bounded worker pool and writes every
// literal into one flat arena:
//
//  1. A serial O(E) pass computes each edge's exact clause, literal,
//     and auxiliary-variable counts; prefix sums assign each edge a
//     clause-slot range, a literal range, and an aux-var base. Ladder
//     auxiliaries are numbered from the per-edge base exactly as the
//     sequential encoder's incremental AddVar would have produced.
//  2. Workers fill their preassigned ranges concurrently; no worker
//     touches another's slots, and concatenation is implicit in the
//     layout, so the output is canonical regardless of schedule.
//
// Every clause is a slice into the single backing literal arena, so
// handing the Formula to the incremental solver's clause arena streams
// one contiguous allocation instead of E small ones.
//
// workers ≤ 1 still uses the sharded layout but fills it serially.
func EncodeParallel(g *hypergraph.Graph, enc Encoding, workers int) *Problem {
	return EncodeParallelTraced(g, enc, workers, nil)
}

// EncodeParallelTraced is EncodeParallel emitting one "encode.shards"
// summary event on sp (per-edge shard sizes aggregated; a per-edge
// record would dominate the trace at fleet scale). A nil sp traces
// nothing.
func EncodeParallelTraced(g *hypergraph.Graph, enc Encoding, workers int, sp *telemetry.Span) *Problem {
	f := sat.NewFormula(g.Len())
	p := &Problem{
		Formula: f,
		VarOf:   make(map[string]int, g.Len()),
		IDOf:    make([]string, g.Len()+1),
	}
	for i, id := range g.Order {
		v := i + 1
		p.VarOf[id] = v
		p.IDOf[v] = id
	}

	// Unit constraints for partial-spec instances (serial; cheap).
	units := 0
	for _, n := range g.Nodes() {
		if n.FromSpec {
			units++
		}
	}

	// Pass 1: exact per-edge shard sizes and prefix offsets. Offsets
	// start after the unit clauses.
	nEdges := len(g.Edges)
	clauseOff := make([]int, nEdges+1)
	litOff := make([]int, nEdges+1)
	auxOff := make([]int, nEdges+1)
	clauseOff[0], litOff[0] = units, units
	for i, e := range g.Edges {
		nc, nl, na := edgeCounts(len(e.Targets), enc)
		clauseOff[i+1] = clauseOff[i] + nc
		litOff[i+1] = litOff[i] + nl
		auxOff[i+1] = auxOff[i] + na
	}

	clauses := make([]sat.Clause, clauseOff[nEdges])
	arena := make([]sat.Lit, litOff[nEdges])
	f.NumVars = g.Len() + auxOff[nEdges]

	// Unit clauses occupy the first slots, one literal each.
	ui := 0
	for _, n := range g.Nodes() {
		if n.FromSpec {
			arena[ui] = sat.Lit(p.VarOf[n.ID])
			clauses[ui] = arena[ui : ui+1 : ui+1]
			ui++
		}
	}

	// Pass 2: fill edge shards concurrently.
	conc.ParallelFor(nEdges, workers, func(i int) {
		e := g.Edges[i]
		s := shard{
			clauses: clauses[clauseOff[i]:clauseOff[i+1]],
			arena:   arena[litOff[i]:litOff[i+1]],
		}
		src := sat.Lit(p.VarOf[e.Source])
		lits := make([]sat.Lit, len(e.Targets))
		for j, t := range e.Targets {
			lits[j] = sat.Lit(p.VarOf[t])
		}
		auxBase := g.Len() + auxOff[i]
		emitEdge(&s, src, lits, enc, auxBase)
		if s.ci != len(s.clauses) || s.li != len(s.arena) {
			panic(fmt.Sprintf(
				"constraint: edge %d shard fill mismatch: %d/%d clauses, %d/%d lits",
				i, s.ci, len(s.clauses), s.li, len(s.arena)))
		}
	})

	f.Clauses = clauses
	for len(p.IDOf) < f.NumVars+1 {
		p.IDOf = append(p.IDOf, "")
	}
	sp.Event("encode.shards").
		Int("edges", int64(nEdges)).
		Int("units", int64(units)).
		Int("clauses", int64(len(clauses))).
		Int("lits", int64(len(arena))).
		Int("aux_vars", int64(auxOff[nEdges])).
		Int("workers", int64(workers)).
		Emit()
	return p
}

// edgeCounts returns the exact number of clauses, literals, and
// auxiliary variables that encoding an n-target hyperedge emits.
func edgeCounts(n int, enc Encoding) (clauses, lits, aux int) {
	if enc == Pairwise || n <= 3 {
		pairs := n * (n - 1) / 2
		return 1 + pairs, (n + 1) + 3*pairs, 0
	}
	// Ladder, n > 3: at-least-one (n+1 lits) plus the guarded
	// sequential at-most-one — 3n-4 ternary clauses, n-1 aux vars.
	return 3*n - 3, (n + 1) + 3*(3*n-4), n - 1
}

// shard is a preassigned clause/literal range being filled by one edge.
type shard struct {
	clauses []sat.Clause
	arena   []sat.Lit
	ci, li  int
}

func (s *shard) add(lits ...sat.Lit) {
	c := s.arena[s.li : s.li+len(lits) : s.li+len(lits)]
	copy(c, lits)
	s.li += len(lits)
	s.clauses[s.ci] = sat.Clause(c)
	s.ci++
}

// addALO writes (¬src ∨ l1 ∨ … ∨ ln) without an intermediate slice.
func (s *shard) addALO(src sat.Lit, lits []sat.Lit) {
	n := len(lits) + 1
	c := s.arena[s.li : s.li+n : s.li+n]
	c[0] = src.Neg()
	copy(c[1:], lits)
	s.li += n
	s.clauses[s.ci] = sat.Clause(c)
	s.ci++
}

// emitEdge writes the clauses for src → ⊕lits into the shard, mirroring
// Encode's emission order clause for clause.
func emitEdge(s *shard, src sat.Lit, lits []sat.Lit, enc Encoding, auxBase int) {
	n := len(lits)
	if enc == Pairwise || n <= 3 {
		s.addALO(src, lits)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s.add(src.Neg(), lits[i].Neg(), lits[j].Neg())
			}
		}
		return
	}
	s.addALO(src, lits)
	aux := func(i int) sat.Lit { return sat.Lit(auxBase + i + 1) }
	s.add(src.Neg(), lits[0].Neg(), aux(0))
	for i := 1; i < n-1; i++ {
		s.add(src.Neg(), aux(i-1).Neg(), aux(i))
		s.add(src.Neg(), lits[i].Neg(), aux(i))
		s.add(src.Neg(), lits[i].Neg(), aux(i-1).Neg())
	}
	s.add(src.Neg(), lits[n-1].Neg(), aux(n-2).Neg())
}
