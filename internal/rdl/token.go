// Package rdl implements the Engage resource definition language: the
// concrete syntax for resource types that the paper deliberately leaves
// unspecified ("We omit describing a concrete syntax for resources").
//
// The language is declarative. A registry of resource types is written
// as a sequence of resource declarations:
//
//	// A machine type.
//	abstract resource "Server" {
//	    config {
//	        hostname: string = "localhost"
//	        os_user_name: string = "root"
//	    }
//	    output {
//	        host: struct { hostname: string } = { hostname: config.hostname }
//	    }
//	}
//
//	resource "Mac-OSX 10.6" extends "Server" {}
//
//	resource "Tomcat 6.0.18" {
//	    inside "Server"
//	    input  { java: struct { home: string } }
//	    config { manager_port: tcp_port = 8080 }
//	    output {
//	        tomcat: struct { port: tcp_port } = { port: config.manager_port }
//	    }
//	    env "Java" { java -> java }
//	}
//
// Dependencies admit the §3.4 sugar: disjunction
// (`env one_of("JDK 1.6", "JRE 1.6") { java -> java }`), version ranges
// embedded in the target key (`inside "Tomcat [5.5, 6.0.29)"`), static
// port bindings (`static config { … }` entries via the `static`
// modifier), and reverse port maps (`reverse app_config -> server_config`
// inside a dependency block).
package rdl

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokString // "quoted"
	TokInt
	TokLBrace // {
	TokRBrace // }
	TokLParen // (
	TokRParen // )
	TokLBrack // [
	TokRBrack // ]
	TokColon  // :
	TokComma  // ,
	TokEquals // =
	TokArrow  // ->
	TokDot    // .

	// Keywords.
	TokResource
	TokAbstract
	TokExtends
	TokInside
	TokEnv
	TokPeer
	TokInput
	TokConfig
	TokOutput
	TokStatic
	TokOneOf
	TokConcat
	TokStruct
	TokList
	TokReverse
	TokTrue
	TokFalse
	TokSecretLit // secret("...")
)

var keywords = map[string]TokKind{
	"resource": TokResource,
	"abstract": TokAbstract,
	"extends":  TokExtends,
	"inside":   TokInside,
	"env":      TokEnv,
	"peer":     TokPeer,
	"input":    TokInput,
	"config":   TokConfig,
	"output":   TokOutput,
	"static":   TokStatic,
	"one_of":   TokOneOf,
	"concat":   TokConcat,
	"struct":   TokStruct,
	"list":     TokList,
	"reverse":  TokReverse,
	"true":     TokTrue,
	"false":    TokFalse,
	"secret":   TokSecretLit,
}

var kindNames = map[TokKind]string{
	TokEOF:       "end of file",
	TokIdent:     "identifier",
	TokString:    "string literal",
	TokInt:       "integer literal",
	TokLBrace:    "'{'",
	TokRBrace:    "'}'",
	TokLParen:    "'('",
	TokRParen:    "')'",
	TokLBrack:    "'['",
	TokRBrack:    "']'",
	TokColon:     "':'",
	TokComma:     "','",
	TokEquals:    "'='",
	TokArrow:     "'->'",
	TokDot:       "'.'",
	TokResource:  "'resource'",
	TokAbstract:  "'abstract'",
	TokExtends:   "'extends'",
	TokInside:    "'inside'",
	TokEnv:       "'env'",
	TokPeer:      "'peer'",
	TokInput:     "'input'",
	TokConfig:    "'config'",
	TokOutput:    "'output'",
	TokStatic:    "'static'",
	TokOneOf:     "'one_of'",
	TokConcat:    "'concat'",
	TokStruct:    "'struct'",
	TokList:      "'list'",
	TokReverse:   "'reverse'",
	TokTrue:      "'true'",
	TokFalse:     "'false'",
	TokSecretLit: "'secret'",
}

func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders "file:line:col".
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a lexical token with position and payload.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string // identifier name or string payload
	Int  int    // integer payload
	Doc  string // doc comment attached to the token, if any
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	case TokInt:
		return fmt.Sprintf("integer %d", t.Int)
	default:
		return t.Kind.String()
	}
}
