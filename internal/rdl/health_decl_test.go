package rdl

import (
	"strings"
	"testing"
	"time"

	"engage/internal/resource"
)

const healthRDL = `
abstract resource "Server" {}
resource "Cache 1.4" {
    inside "Server"
    config { port: tcp_port = 11211 }
    health {
        probe "port-open"
        probe "proc-alive"
        probe "check"
        interval "15s"
        timeout "2s"
        failures 4
        successes 3
    }
}`

func TestParseHealthClause(t *testing.T) {
	reg, err := ParseAndResolve(map[string]string{"h.rdl": healthRDL})
	if err != nil {
		t.Fatal(err)
	}
	c := reg.MustLookup(resource.MakeKey("Cache", "1.4"))
	if c.Health == nil {
		t.Fatal("health spec missing")
	}
	h := c.Health
	want := []string{"port-open", "proc-alive", "check"}
	if len(h.Probes) != len(want) {
		t.Fatalf("probes = %v, want %v", h.Probes, want)
	}
	for i, kind := range want {
		if h.Probes[i] != kind {
			t.Errorf("probe %d = %q, want %q", i, h.Probes[i], kind)
		}
	}
	if h.Interval != 15*time.Second || h.Timeout != 2*time.Second {
		t.Errorf("interval/timeout = %v/%v", h.Interval, h.Timeout)
	}
	if h.FailureThreshold != 4 || h.SuccessThreshold != 3 {
		t.Errorf("thresholds = %d/%d", h.FailureThreshold, h.SuccessThreshold)
	}
	if h.Origin == "" || !strings.HasPrefix(h.Origin, "h.rdl:") {
		t.Errorf("origin = %q, want h.rdl position", h.Origin)
	}
}

func TestHealthClauseDefaults(t *testing.T) {
	src := `resource "A 1" { health { probe "proc-alive" } }`
	reg, err := ParseAndResolve(map[string]string{"h.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	h := reg.MustLookup(resource.MakeKey("A", "1")).Health
	if h.Interval != 30*time.Second || h.Timeout != 5*time.Second {
		t.Errorf("default interval/timeout = %v/%v", h.Interval, h.Timeout)
	}
	if h.FailureThreshold != 3 || h.SuccessThreshold != 2 {
		t.Errorf("default thresholds = %d/%d", h.FailureThreshold, h.SuccessThreshold)
	}
}

func TestHealthClauseInherited(t *testing.T) {
	src := healthRDL + `
resource "Cache-Pro 2.0" extends "Cache 1.4" {}`
	reg, err := ParseAndResolve(map[string]string{"h.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	pro := reg.MustLookup(resource.MakeKey("Cache-Pro", "2.0"))
	if pro.Health == nil || len(pro.Health.Probes) != 3 {
		t.Error("health spec should be inherited")
	}
}

func TestHealthClauseFormatRoundTrip(t *testing.T) {
	reg, err := ParseAndResolve(map[string]string{"h.rdl": healthRDL})
	if err != nil {
		t.Fatal(err)
	}
	text := Format(reg.MustLookup(resource.MakeKey("Cache", "1.4")))
	for _, want := range []string{
		"health {",
		`probe "port-open"`,
		`interval "15s"`,
		`timeout "2s"`,
		"failures 4",
		"successes 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted health missing %q:\n%s", want, text)
		}
	}
	full := `abstract resource "Server" {}` + "\n" + text
	reg2, err := ParseAndResolve(map[string]string{"again.rdl": full})
	if err != nil {
		t.Fatalf("formatted health does not re-parse: %v\n%s", err, text)
	}
	h2 := reg2.MustLookup(resource.MakeKey("Cache", "1.4")).Health
	if h2 == nil || len(h2.Probes) != 3 || h2.FailureThreshold != 4 {
		t.Error("health lost in round trip")
	}
}

func TestHealthClauseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`resource "A 1" { health {} health {} }`, "duplicate health"},
		{`resource "A 1" { health { 42 } }`, "expected health setting"},
		{`resource "A 1" { health { wibble "x" } }`, "expected health setting"},
		{`resource "A 1" { health { probe 42 } }`, "expected string"},
		{`resource "A 1" { health { failures "three" } }`, "expected integer literal"},
		{`resource "A 1" { health { interval "1s" interval "2s" } }`, "duplicate interval"},
		{`resource "A 1" { health { timeout "1s" timeout "2s" } }`, "duplicate timeout"},
	}
	for _, c := range cases {
		_, err := Parse("t", c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestHealthBadDurationPosition(t *testing.T) {
	src := `resource "A 1" {
    health {
        probe "check"
        interval "soon"
    }
}`
	_, err := ParseAndResolve(map[string]string{"pos.rdl": src})
	if err == nil {
		t.Fatal("bad duration should not resolve")
	}
	msg := err.Error()
	if !strings.Contains(msg, "pos.rdl:4") || !strings.Contains(msg, `bad interval "soon"`) {
		t.Errorf("error should point at the interval literal: %v", err)
	}
}
