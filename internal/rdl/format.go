package rdl

import (
	"fmt"
	"sort"
	"strings"

	"engage/internal/resource"
)

// Format renders a resource type back to canonical RDL surface syntax.
// Formatting then re-resolving yields an equivalent type (round-trip
// property, tested), which makes the formatter usable for normalizing
// hand-written libraries and for exporting programmatically built types
// (e.g., generated Django application types).
//
// Inherited ports and dependencies are flattened by the registry at Add
// time, so Format emits the flattened form and omits the extends clause.
func Format(t *resource.Type) string {
	var b strings.Builder
	if t.Doc != "" {
		for _, line := range strings.Split(t.Doc, "\n") {
			fmt.Fprintf(&b, "// %s\n", line)
		}
	}
	if t.Abstract {
		b.WriteString("abstract ")
	}
	fmt.Fprintf(&b, "resource %q {\n", t.Key.String())

	if t.Inside != nil {
		b.WriteString("    inside ")
		writeDepTarget(&b, *t.Inside)
		writeDepMaps(&b, *t.Inside, "    ")
		b.WriteByte('\n')
	}
	writePortSection(&b, "input", t.Input)
	writePortSection(&b, "config", t.Config)
	writePortSection(&b, "output", t.Output)
	for _, d := range t.Env {
		b.WriteString("    env ")
		writeDepTarget(&b, d)
		writeDepMaps(&b, d, "    ")
		b.WriteByte('\n')
	}
	for _, d := range t.Peer {
		b.WriteString("    peer ")
		writeDepTarget(&b, d)
		writeDepMaps(&b, d, "    ")
		b.WriteByte('\n')
	}
	if t.Driver != nil {
		writeDriver(&b, t.Driver)
	}
	if t.Health != nil {
		writeHealth(&b, t.Health)
	}
	b.WriteString("}\n")
	return b.String()
}

func writeHealth(b *strings.Builder, h *resource.HealthSpec) {
	b.WriteString("    health {\n")
	for _, kind := range h.Probes {
		fmt.Fprintf(b, "        probe %q\n", kind)
	}
	fmt.Fprintf(b, "        interval %q\n", h.Interval.String())
	fmt.Fprintf(b, "        timeout %q\n", h.Timeout.String())
	fmt.Fprintf(b, "        failures %d\n", h.FailureThreshold)
	fmt.Fprintf(b, "        successes %d\n", h.SuccessThreshold)
	b.WriteString("    }\n")
}

func writeDriver(b *strings.Builder, d *resource.DriverSpec) {
	b.WriteString("    driver {\n")
	if len(d.States) > 0 {
		fmt.Fprintf(b, "        states { %s }\n", strings.Join(d.States, ", "))
	}
	for _, tr := range d.Transitions {
		fmt.Fprintf(b, "        %s: %s -> %s", tr.Name, tr.From, tr.To)
		if len(tr.Guards) > 0 {
			parts := make([]string, len(tr.Guards))
			for i, g := range tr.Guards {
				dir := "down"
				if g.Up {
					dir = "up"
				}
				parts[i] = fmt.Sprintf("%s(%s)", dir, g.State)
			}
			fmt.Fprintf(b, " when %s", strings.Join(parts, ", "))
		}
		if tr.Action != "" {
			fmt.Fprintf(b, " exec %q", tr.Action)
		}
		b.WriteByte('\n')
	}
	b.WriteString("    }\n")
}

// FormatRegistry renders every type of a registry, sorted by key.
func FormatRegistry(reg *resource.Registry) string {
	var b strings.Builder
	for i, k := range reg.Keys() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(Format(reg.MustLookup(k)))
	}
	return b.String()
}

func writeDepTarget(b *strings.Builder, d resource.Dependency) {
	if len(d.Alternatives) == 1 {
		fmt.Fprintf(b, "%q", d.Alternatives[0].String())
		return
	}
	b.WriteString("one_of(")
	for i, alt := range d.Alternatives {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%q", alt.String())
	}
	b.WriteString(")")
}

func writeDepMaps(b *strings.Builder, d resource.Dependency, indent string) {
	if len(d.PortMap) == 0 && len(d.ReversePortMap) == 0 {
		return
	}
	b.WriteString(" {\n")
	for _, from := range sortedKeys(d.PortMap) {
		fmt.Fprintf(b, "%s    %s -> %s\n", indent, from, d.PortMap[from])
	}
	for _, from := range sortedKeys(d.ReversePortMap) {
		fmt.Fprintf(b, "%s    reverse %s -> %s\n", indent, from, d.ReversePortMap[from])
	}
	fmt.Fprintf(b, "%s}", indent)
}

func writePortSection(b *strings.Builder, name string, ports []resource.Port) {
	if len(ports) == 0 {
		return
	}
	fmt.Fprintf(b, "    %s {\n", name)
	for _, p := range ports {
		b.WriteString("        ")
		if p.Static {
			b.WriteString("static ")
		}
		fmt.Fprintf(b, "%s: %s", p.Name, formatType(p.Type))
		if p.Def != nil {
			fmt.Fprintf(b, " = %s", formatExpr(p.Def))
		}
		b.WriteByte('\n')
	}
	b.WriteString("    }\n")
}

func formatType(t resource.PortType) string {
	switch t.Kind {
	case resource.KindStruct:
		names := make([]string, 0, len(t.Fields))
		for n := range t.Fields {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = n + ": " + formatType(t.Fields[n])
		}
		return "struct { " + strings.Join(parts, ", ") + " }"
	case resource.KindList:
		elem := "any"
		if t.Elem != nil {
			elem = formatType(*t.Elem)
		}
		return "list[" + elem + "]"
	default:
		return t.Kind.String()
	}
}

func formatExpr(e resource.Expr) string {
	switch x := e.(type) {
	case resource.Lit:
		return formatValue(x.V)
	case resource.Ref:
		s := x.Sec.String() + "." + x.Name
		if len(x.Path) > 0 {
			s += "." + strings.Join(x.Path, ".")
		}
		return s
	case resource.Concat:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = formatExpr(a)
		}
		return "concat(" + strings.Join(parts, ", ") + ")"
	case resource.MakeList:
		parts := make([]string, len(x.Elems))
		for i, el := range x.Elems {
			parts[i] = formatExpr(el)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case resource.MakeStruct:
		names := make([]string, 0, len(x.Fields))
		for n := range x.Fields {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = n + ": " + formatExpr(x.Fields[n])
		}
		return "{ " + strings.Join(parts, ", ") + " }"
	default:
		return fmt.Sprintf("/* %T */", e)
	}
}

func formatValue(v resource.Value) string {
	switch v.Kind {
	case resource.KindString:
		return fmt.Sprintf("%q", v.Str)
	case resource.KindSecret:
		return fmt.Sprintf("secret(%q)", v.Str)
	case resource.KindInt, resource.KindPort:
		return fmt.Sprintf("%d", v.Int)
	case resource.KindBool:
		if v.Bool {
			return "true"
		}
		return "false"
	case resource.KindList:
		parts := make([]string, len(v.List))
		for i, e := range v.List {
			parts[i] = formatValue(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case resource.KindStruct:
		names := make([]string, 0, len(v.Fields))
		for n := range v.Fields {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, n := range names {
			parts[i] = n + ": " + formatValue(v.Fields[n])
		}
		return "{ " + strings.Join(parts, ", ") + " }"
	default:
		return fmt.Sprintf("/* %v */", v.Kind)
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
