package rdl

import (
	"testing"
	"testing/quick"
)

// Property: the parser never panics on arbitrary input — it returns a
// File or an error.
func TestParseNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse("fuzz", src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: mutating valid source by truncation never panics and either
// parses or errors cleanly.
func TestParseTruncationsOfValidSource(t *testing.T) {
	src := openmrsRDL
	for i := 0; i < len(src); i += 7 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", i, r)
				}
			}()
			_, _ = Parse("trunc", src[:i])
		}()
	}
}

// Property: the resolver never panics on parseable files.
func TestResolveNeverPanics(t *testing.T) {
	srcs := []string{
		`resource "A 1" {}`,
		`resource "A 1" extends "A 1" {}`,
		`abstract resource "B" {} resource "A 1" extends "B" { env "B" }`,
		`resource "A 1" { inside "X [1,2)" }`,
		`resource "A 1" { config { p: list[list[string]] = [[]] } }`,
	}
	for _, src := range srcs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			f, err := Parse("x", src)
			if err != nil {
				return
			}
			_, _ = Resolve(f)
		}()
	}
}
