package rdl

import (
	"strings"
	"testing"

	"engage/internal/resource"
	"engage/internal/typecheck"
)

// TestFormatRoundTrip: formatting the resolved OpenMRS registry and
// re-resolving the output yields an equivalent registry (same keys,
// ports, dependencies), and the result still passes the checker.
func TestFormatRoundTrip(t *testing.T) {
	reg, err := ParseAndResolve(map[string]string{"openmrs.rdl": openmrsRDL})
	if err != nil {
		t.Fatal(err)
	}
	text := FormatRegistry(reg)
	reg2, err := ParseAndResolve(map[string]string{"formatted.rdl": text})
	if err != nil {
		t.Fatalf("formatted output does not re-parse: %v\n%s", err, text)
	}
	if err := typecheck.CheckTypes(reg2); err != nil {
		t.Fatalf("formatted registry fails checking: %v", err)
	}
	if reg2.Len() != reg.Len() {
		t.Fatalf("type count changed: %d vs %d", reg2.Len(), reg.Len())
	}
	for _, k := range reg.Keys() {
		t1 := reg.MustLookup(k)
		t2, ok := reg2.Lookup(k)
		if !ok {
			t.Fatalf("type %q lost in round trip", k)
		}
		if t1.Abstract != t2.Abstract {
			t.Errorf("%q: abstractness changed", k)
		}
		if len(t1.Input) != len(t2.Input) || len(t1.Config) != len(t2.Config) || len(t1.Output) != len(t2.Output) {
			t.Errorf("%q: port counts changed", k)
		}
		if (t1.Inside == nil) != (t2.Inside == nil) {
			t.Errorf("%q: inside dependency changed", k)
		}
		if len(t1.Env) != len(t2.Env) || len(t1.Peer) != len(t2.Peer) {
			t.Errorf("%q: dependency counts changed", k)
		}
	}

	// Port values survive: evaluate an expression from the re-parsed
	// registry.
	tomcat := reg2.MustLookup(resource.MakeKey("Tomcat", "6.0.18"))
	out, ok := tomcat.FindPort(resource.SecOutput, "tomcat")
	if !ok {
		t.Fatal("tomcat output lost")
	}
	v, err := out.Def.Eval(resource.MapScope{Configs: map[string]resource.Value{
		"manager_port": resource.PortV(8080),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if port, _ := v.Field("port"); port.Int != 8080 {
		t.Errorf("expression semantics changed: %v", v)
	}
}

func TestFormatContainsSugar(t *testing.T) {
	src := `
abstract resource "Server" {}
resource "A 1" { inside "Server" output { o: string = "x" } }
resource "B 1" { inside "Server" output { o: string = "y" } }
resource "App 1" {
    inside "Server"
    input { o: string }
    env one_of("A 1", "B 1") { o -> o }
    output { static cfg: string = "conf" }
}`
	reg, err := ParseAndResolve(map[string]string{"t.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	text := Format(reg.MustLookup(resource.MakeKey("App", "1")))
	for _, want := range []string{`one_of("A 1", "B 1")`, "o -> o", "static cfg"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted output missing %q:\n%s", want, text)
		}
	}
}

func TestFormatReverseMap(t *testing.T) {
	src := `
abstract resource "Server" {}
resource "Container 1" { inside "Server" input { c: string } }
resource "App 1" {
    inside "Container 1" { reverse cfg -> c }
    output { static cfg: string = "x" }
}`
	reg, err := ParseAndResolve(map[string]string{"t.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	text := Format(reg.MustLookup(resource.MakeKey("App", "1")))
	if !strings.Contains(text, "reverse cfg -> c") {
		t.Errorf("reverse map missing:\n%s", text)
	}
	// And it re-parses.
	if _, err := Parse("f", text); err != nil {
		t.Errorf("formatted reverse map does not re-parse: %v\n%s", err, text)
	}
}

func TestListLiteralParseEvalFormat(t *testing.T) {
	src := `
resource "A 1" {
    config { pkgs: list[string] = ["django", "south"] }
}`
	reg, err := ParseAndResolve(map[string]string{"t.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	a := reg.MustLookup(resource.MakeKey("A", "1"))
	p, _ := a.FindPort(resource.SecConfig, "pkgs")
	v, err := p.Def.Eval(resource.MapScope{})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.List) != 2 || v.List[0].Str != "django" {
		t.Errorf("list literal eval = %v", v)
	}
	text := Format(a)
	if !strings.Contains(text, `["django", "south"]`) {
		t.Errorf("list literal formatting:\n%s", text)
	}
	if _, err := ParseAndResolve(map[string]string{"again.rdl": text}); err != nil {
		t.Errorf("list round trip: %v", err)
	}
}

func TestFormatGeneratedAppType(t *testing.T) {
	// Format must handle programmatically built types (MakeList,
	// struct literals, list-typed config ports) — re-parse to verify.
	listTy := resource.ListType(resource.T(resource.KindString))
	ty := &resource.Type{
		Key: resource.MakeKey("Gen", "1"),
		Config: []resource.Port{
			{Name: "packages", Type: listTy,
				Def: resource.Lit{V: resource.ListV(resource.Str("a"), resource.Str("b"))}},
			{Name: "count", Type: resource.T(resource.KindInt),
				Def: resource.Lit{V: resource.IntV(3)}},
		},
		Output: []resource.Port{
			{Name: "combined", Type: listTy,
				Def: resource.MakeList{Elems: []resource.Expr{
					resource.Lit{V: resource.Str("x")},
					resource.Ref{Sec: resource.SecConfig, Name: "count"},
				}}},
		},
	}
	text := Format(ty)
	reg, err := ParseAndResolve(map[string]string{"gen.rdl": text})
	if err != nil {
		t.Fatalf("generated type does not round-trip: %v\n%s", err, text)
	}
	if _, ok := reg.Lookup(resource.MakeKey("Gen", "1")); !ok {
		t.Error("generated type lost")
	}
}
