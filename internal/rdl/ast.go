package rdl

// File is a parsed RDL source file.
type File struct {
	Name  string
	Decls []*ResourceDecl
}

// ResourceDecl is a parsed `resource` declaration.
type ResourceDecl struct {
	Pos      Pos
	Doc      string
	Abstract bool
	Key      string // raw key string, e.g. "Tomcat 6.0.18"
	Extends  string // raw parent key, or ""

	Inside  *DepDecl
	Inputs  []*PortDecl
	Configs []*PortDecl
	Outputs []*PortDecl
	Envs    []*DepDecl
	Peers   []*DepDecl
	Driver  *DriverDecl
	Health  *HealthDecl
}

// DriverDecl is a parsed `driver { … }` clause: the declarative
// lifecycle state machine of §5.1, e.g.
//
//	driver {
//	    states { uninstalled, inactive, active }
//	    install:   uninstalled -> inactive                 exec "pkg_install"
//	    start:     inactive -> active   when up(active)    exec "spawn_daemon"
//	    stop:      active -> inactive   when down(inactive) exec "kill_daemon"
//	    uninstall: inactive -> uninstalled                 exec "pkg_remove"
//	}
type DriverDecl struct {
	Pos         Pos
	States      []string
	Transitions []TransitionDecl
}

// HealthDecl is a parsed `health { … }` clause: the probe set and
// state-machine thresholds of a resource's health check, e.g.
//
//	health {
//	    probe "port-open"
//	    probe "check"
//	    interval "30s"
//	    timeout "5s"
//	    failures 3
//	    successes 2
//	}
//
// Durations are string literals (parsed at resolve time, so a bad
// duration points at its source position).
type HealthDecl struct {
	Pos         Pos
	Probes      []ProbeDecl
	Interval    string // raw duration literal, "" when omitted
	IntervalPos Pos
	Timeout     string
	TimeoutPos  Pos
	Failures    int // 0 when omitted
	Successes   int
}

// ProbeDecl is one `probe "kind"` line of a health clause.
type ProbeDecl struct {
	Pos  Pos
	Kind string
}

// TransitionDecl is one guarded transition of a driver clause.
type TransitionDecl struct {
	Pos    Pos
	Name   string
	From   string
	To     string
	Guards []GuardDecl
	Action string
}

// GuardDecl is `up(state)` or `down(state)`.
type GuardDecl struct {
	Up    bool
	State string
}

// PortDecl is a parsed port declaration: `name: type [= expr]` with an
// optional `static` modifier.
type PortDecl struct {
	Pos    Pos
	Name   string
	Static bool
	Type   TypeExpr
	Def    ExprNode // nil when no default
}

// DepDecl is a parsed dependency clause: one or more raw target strings
// (a single key, the one_of disjunction, or a key with an embedded
// version range) plus port-map entries.
type DepDecl struct {
	Pos     Pos
	Targets []string
	Maps    []PortMapEntry
}

// PortMapEntry is `from -> to`, optionally `reverse from -> to`.
type PortMapEntry struct {
	Pos     Pos
	From    string
	To      string
	Reverse bool
}

// TypeExpr is a parsed port type expression.
type TypeExpr interface{ isTypeExpr() }

// NamedType is a base type name: string, int, bool, tcp_port, secret, any.
type NamedType struct {
	Pos  Pos
	Name string
}

// StructTypeExpr is `struct { field: type, … }`.
type StructTypeExpr struct {
	Pos    Pos
	Fields []StructTypeField
}

// StructTypeField is one field of a struct type.
type StructTypeField struct {
	Name string
	Type TypeExpr
}

// ListTypeExpr is `list[type]`.
type ListTypeExpr struct {
	Pos  Pos
	Elem TypeExpr
}

func (NamedType) isTypeExpr()      {}
func (StructTypeExpr) isTypeExpr() {}
func (ListTypeExpr) isTypeExpr()   {}

// ExprNode is a parsed port-value expression.
type ExprNode interface{ isExpr() }

// StrLit is a string literal.
type StrLit struct {
	Pos Pos
	Val string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int
}

// BoolLit is true or false.
type BoolLit struct {
	Pos Pos
	Val bool
}

// SecretLit is `secret("…")`.
type SecretLit struct {
	Pos Pos
	Val string
}

// RefExpr is `input.name.field…` or `config.name.field…`.
type RefExpr struct {
	Pos     Pos
	Section string // "input" or "config"
	Name    string
	Path    []string
}

// ConcatExpr is `concat(e1, e2, …)`.
type ConcatExpr struct {
	Pos  Pos
	Args []ExprNode
}

// ListLit is `[ expr, … ]`.
type ListLit struct {
	Pos   Pos
	Elems []ExprNode
}

// StructLit is `{ field: expr, … }`.
type StructLit struct {
	Pos    Pos
	Fields []StructLitField
}

// StructLitField is one field of a struct literal.
type StructLitField struct {
	Name string
	Expr ExprNode
}

func (StrLit) isExpr()     {}
func (IntLit) isExpr()     {}
func (BoolLit) isExpr()    {}
func (SecretLit) isExpr()  {}
func (RefExpr) isExpr()    {}
func (ConcatExpr) isExpr() {}
func (ListLit) isExpr()    {}
func (StructLit) isExpr()  {}
