package rdl

import (
	"strings"
	"testing"

	"engage/internal/resource"
	"engage/internal/typecheck"
)

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("t", `resource "Tomcat 6.0.18" { config { p: tcp_port = 8080 } }`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokResource, TokString, TokLBrace, TokConfig, TokLBrace,
		TokIdent, TokColon, TokIdent, TokEquals, TokInt, TokRBrace, TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[1].Text != "Tomcat 6.0.18" {
		t.Errorf("string payload = %q", toks[1].Text)
	}
	if toks[9].Int != 8080 {
		t.Errorf("int payload = %d", toks[9].Int)
	}
}

func TestLexComments(t *testing.T) {
	src := `
// The Tomcat servlet container.
// Runs inside a server.
resource "Tomcat 6.0.18" {}
/* block
   comment */ resource "X 1" {}`
	toks, err := LexAll("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(toks[0].Doc, "Tomcat servlet container") {
		t.Errorf("doc comment not attached: %q", toks[0].Doc)
	}
}

func TestLexArrowAndEscapes(t *testing.T) {
	toks, err := LexAll("t", `a -> "x\n\"y\"" `)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokArrow {
		t.Errorf("expected arrow, got %v", toks[1])
	}
	if toks[2].Text != "x\n\"y\"" {
		t.Errorf("escapes wrong: %q", toks[2].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `@`, `a - b`, `"bad \q escape"`, `/* unterminated`, `/ x`} {
		if _, err := LexAll("t", src); err == nil {
			t.Errorf("LexAll(%q): expected error", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("f.rdl", "resource\n  \"X 1\"")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("first token pos = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("second token pos = %v", toks[1].Pos)
	}
	if !strings.HasPrefix(toks[1].Pos.String(), "f.rdl:2:3") {
		t.Errorf("pos string = %q", toks[1].Pos.String())
	}
}

// openmrsRDL is the complete §2 resource library in RDL surface syntax.
const openmrsRDL = `
// A physical or virtual machine.
abstract resource "Server" {
    config {
        hostname: string = "localhost"
        os_user_name: string = "root"
    }
    output {
        host: struct { hostname: string } = { hostname: config.hostname }
    }
}

resource "Mac-OSX 10.6" extends "Server" {}
resource "Windows-XP" extends "Server" {}

// The Java runtime, abstract over JDK and JRE.
abstract resource "Java" {
    inside "Server"
    output {
        java: struct { home: string } = { home: "/usr/java" }
    }
}

resource "JDK 1.6" extends "Java" {}
resource "JRE 1.6" extends "Java" {}

resource "Tomcat 6.0.18" {
    inside "Server"
    input  { java: struct { home: string } }
    config { manager_port: tcp_port = 8080 }
    output {
        tomcat: struct { port: tcp_port } = { port: config.manager_port }
    }
    env "Java" { java -> java }
}

resource "MySQL 5.1" {
    inside "Server"
    config {
        port: tcp_port = 3306
        admin_password: secret = secret("changeme")
    }
    output {
        mysql: struct { host: string, port: tcp_port } = {
            host: "localhost", port: config.port
        }
    }
}

resource "OpenMRS 1.8" {
    inside "Tomcat [5.5, 6.0.29)"
    input {
        java: struct { home: string }
        mysql: struct { host: string, port: tcp_port }
    }
    output {
        url: string = concat("http://localhost/openmrs")
    }
    env "Java" { java -> java }
    peer "MySQL 5.1" { mysql -> mysql }
}
`

func TestParseAndResolveOpenMRS(t *testing.T) {
	reg, err := ParseAndResolve(map[string]string{"openmrs.rdl": openmrsRDL})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 9 {
		t.Errorf("registry has %d types, want 9", reg.Len())
	}
	if err := typecheck.CheckTypes(reg); err != nil {
		t.Errorf("RDL-built registry should be well-formed: %v", err)
	}

	// Doc comments flow through.
	server := reg.MustLookup(resource.Key{Name: "Server"})
	if !strings.Contains(server.Doc, "physical or virtual machine") {
		t.Errorf("Server doc = %q", server.Doc)
	}
	if !server.Abstract {
		t.Error("Server should be abstract")
	}

	// Version-range sugar: OpenMRS's inside dependency expands to the
	// declared Tomcat versions in [5.5, 6.0.29): just 6.0.18 here.
	openmrs := reg.MustLookup(resource.MakeKey("OpenMRS", "1.8"))
	if len(openmrs.Inside.Alternatives) != 1 ||
		openmrs.Inside.Alternatives[0] != resource.MakeKey("Tomcat", "6.0.18") {
		t.Errorf("range expansion wrong: %v", openmrs.Inside.Alternatives)
	}

	// Inheritance: JDK inherits Java's output and inside dependency.
	jdk := reg.MustLookup(resource.MakeKey("JDK", "1.6"))
	if _, ok := jdk.FindPort(resource.SecOutput, "java"); !ok {
		t.Error("JDK should inherit java output port")
	}
	if jdk.IsMachine() {
		t.Error("JDK should not be a machine")
	}

	// Secret literal.
	mysql := reg.MustLookup(resource.MakeKey("MySQL", "5.1"))
	pw, ok := mysql.FindPort(resource.SecConfig, "admin_password")
	if !ok {
		t.Fatal("admin_password missing")
	}
	v, err := pw.Def.Eval(resource.MapScope{})
	if err != nil || v.Kind != resource.KindSecret || v.Str != "changeme" {
		t.Errorf("secret literal = %v, %v", v, err)
	}

	// Struct output with config ref evaluates.
	tomcat := reg.MustLookup(resource.MakeKey("Tomcat", "6.0.18"))
	out, _ := tomcat.FindPort(resource.SecOutput, "tomcat")
	tv, err := out.Def.Eval(resource.MapScope{Configs: map[string]resource.Value{
		"manager_port": resource.PortV(8080),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if port, _ := tv.Field("port"); port.Int != 8080 {
		t.Errorf("tomcat output port = %v", tv)
	}
}

func TestParseOneOf(t *testing.T) {
	src := `
abstract resource "Server" {}
resource "A 1" { inside "Server" output { o: string = "a" } }
resource "B 1" { inside "Server" output { o: string = "b" } }
resource "App 1" {
    inside "Server"
    input { o: string }
    env one_of("A 1", "B 1") { o -> o }
}`
	reg, err := ParseAndResolve(map[string]string{"t.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	app := reg.MustLookup(resource.MakeKey("App", "1"))
	if len(app.Env) != 1 || len(app.Env[0].Alternatives) != 2 {
		t.Fatalf("one_of lowering wrong: %+v", app.Env)
	}
	if err := typecheck.CheckTypes(reg); err != nil {
		t.Errorf("one_of registry should check: %v", err)
	}
}

func TestParseReverseMap(t *testing.T) {
	src := `
abstract resource "Server" {}
resource "Container 1" {
    inside "Server"
    input { app_config: string }
}
resource "App 1" {
    inside "Container 1" { reverse cfg -> app_config }
    output { static cfg: string = "server.xml" }
}`
	reg, err := ParseAndResolve(map[string]string{"t.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	app := reg.MustLookup(resource.MakeKey("App", "1"))
	if app.Inside.ReversePortMap["cfg"] != "app_config" {
		t.Errorf("reverse map wrong: %+v", app.Inside.ReversePortMap)
	}
	cfg, _ := app.FindPort(resource.SecOutput, "cfg")
	if !cfg.Static {
		t.Error("cfg should be static")
	}
}

func TestParseListType(t *testing.T) {
	src := `
abstract resource "Server" {}
resource "Django App 1.0" {
    inside "Server"
    config { packages: list[string] }
}`
	reg, err := ParseAndResolve(map[string]string{"t.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	app := reg.MustLookup(resource.MakeKey("Django App", "1.0"))
	p, ok := app.FindPort(resource.SecConfig, "packages")
	if !ok || p.Type.Kind != resource.KindList || p.Type.Elem.Kind != resource.KindString {
		t.Errorf("list type lowering wrong: %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`resource X {}`, "expected string"},
		{`resource "A" extends {}`, "expected string"},
		{`resource "A" { inside }`, "dependency target"},
		{`resource "A" { bogus }`, "expected clause"},
		{`resource "A" { config { x } }`, "expected ':'"},
		{`resource "A" { config { x: string = } }`, "expected expression"},
		{`resource "A" { inside "B" inside "C" }`, "duplicate inside"},
		{`resource "A" { env "B" { x y } }`, "expected '->'"},
		{`resource "A" { config { x: struct } }`, "expected '{'"},
		{`resource "A" { config { x: list } }`, "expected '['"},
		{`resource "A" { output { o: string = output.x } }`, "expected expression"},
		{`resource "A" {`, "expected"},
	}
	for _, c := range cases {
		_, err := Parse("t", c.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`resource "A 1" {} resource "A 1" {}`, "duplicate resource"},
		{`resource "A 1" extends "Ghost" {}`, "unknown resource"},
		{`resource "A 1" extends "B 1" {} resource "B 1" extends "A 1" {}`, "inheritance cycle"},
		{`resource "A 1" { config { x: string, x: int } }`, "duplicate port"},
		{`resource "A 1" { config { x: floop } }`, "unknown type"},
		{`resource "A 1" { inside "B [1.0, 2.0)" }`, "no declared version"},
		{`resource "A 1" { config { s: struct { f: string, f: int } } }`, "duplicate struct field"},
		{`resource "A 1" { output { o: string = { f: "a", f: "b" } } }`, "duplicate struct field"},
		{`resource "A 1" { env "B" { x -> a, x -> b } }`, "duplicate mapping"},
	}
	for _, c := range cases {
		_, err := ParseAndResolve(map[string]string{"t.rdl": c.src})
		if err == nil {
			t.Errorf("Resolve(%q): expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Resolve(%q) error = %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestSelfInheritanceCycle(t *testing.T) {
	_, err := ParseAndResolve(map[string]string{"t.rdl": `resource "A 1" extends "A 1" {}`})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("self-extends should be a cycle: %v", err)
	}
}

func TestVersionRangeMultipleMatches(t *testing.T) {
	src := `
abstract resource "Server" {}
resource "Tomcat 5.5" { inside "Server" }
resource "Tomcat 6.0.18" { inside "Server" }
resource "Tomcat 6.0.29" { inside "Server" }
resource "Tomcat 7.0" { inside "Server" }
resource "App 1" { inside "Tomcat [5.5, 6.0.29)" }`
	reg, err := ParseAndResolve(map[string]string{"t.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	app := reg.MustLookup(resource.MakeKey("App", "1"))
	if len(app.Inside.Alternatives) != 2 {
		t.Fatalf("range should match 2 versions: %v", app.Inside.Alternatives)
	}
	if app.Inside.Alternatives[0].Version != "5.5" || app.Inside.Alternatives[1].Version != "6.0.18" {
		t.Errorf("range alternatives wrong: %v", app.Inside.Alternatives)
	}
}

func TestParseTargetPlain(t *testing.T) {
	name, _, hasRange, err := parseTarget("MySQL 5.1")
	if err != nil || hasRange || name != "MySQL 5.1" {
		t.Errorf("plain target: %q %v %v", name, hasRange, err)
	}
	name, rng, hasRange, err := parseTarget("Java [5,)")
	if err != nil || !hasRange || name != "Java" {
		t.Errorf("ranged target: %q %v %v", name, hasRange, err)
	}
	if rng.Min == nil || rng.Min.String() != "5" {
		t.Errorf("range bounds wrong: %v", rng)
	}
	if _, _, _, err := parseTarget("[5,)"); err == nil {
		t.Error("missing name should error")
	}
	if _, _, _, err := parseTarget("X [bad,)"); err == nil {
		t.Error("bad range should error")
	}
}

func TestMultipleFilesDeterministic(t *testing.T) {
	a := `abstract resource "Server" {}`
	b := `resource "Mac 10.6" extends "Server" {}`
	reg, err := ParseAndResolve(map[string]string{"b.rdl": b, "a.rdl": a})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Errorf("expected 2 types, got %d", reg.Len())
	}
}

func TestPortNamedLikeKeyword(t *testing.T) {
	// Ports may be named "config" etc.
	src := `resource "A 1" { output { config: string = "c" } }`
	reg, err := ParseAndResolve(map[string]string{"t.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	a := reg.MustLookup(resource.MakeKey("A", "1"))
	if _, ok := a.FindPort(resource.SecOutput, "config"); !ok {
		t.Error("port named 'config' should parse")
	}
}
