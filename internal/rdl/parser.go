package rdl

import "fmt"

// Parser is a recursive-descent parser for RDL with one token of
// lookahead.
type Parser struct {
	lex *Lexer
	tok Token
	err error
}

// Parse parses an RDL source file.
func Parse(file, src string) (*File, error) {
	p := &Parser{lex: NewLexer(file, src)}
	p.next()
	if p.err != nil {
		return nil, p.err
	}
	f := &File{Name: file}
	for p.tok.Kind != TokEOF {
		d, err := p.parseResource()
		if err != nil {
			return nil, err
		}
		f.Decls = append(f.Decls, d)
	}
	return f, nil
}

func (p *Parser) next() {
	if p.err != nil {
		return
	}
	t, err := p.lex.Next()
	if err != nil {
		p.err = err
		p.tok = Token{Kind: TokEOF}
		return
	}
	p.tok = t
}

func (p *Parser) errorf(format string, args ...any) error {
	if p.err != nil {
		return p.err
	}
	return &Error{Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.err != nil {
		return Token{}, p.err
	}
	if p.tok.Kind != k {
		return Token{}, p.errorf("expected %s, found %s", k, p.tok)
	}
	t := p.tok
	p.next()
	return t, p.err
}

func (p *Parser) accept(k TokKind) bool {
	if p.err == nil && p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// parseResource parses `[abstract] resource "Key" [extends "Key"] { … }`.
func (p *Parser) parseResource() (*ResourceDecl, error) {
	d := &ResourceDecl{Pos: p.tok.Pos, Doc: p.tok.Doc}
	if p.accept(TokAbstract) {
		d.Abstract = true
	}
	if _, err := p.expect(TokResource); err != nil {
		return nil, err
	}
	key, err := p.expect(TokString)
	if err != nil {
		return nil, err
	}
	d.Key = key.Text
	if d.Doc == "" {
		d.Doc = key.Doc
	}
	if p.accept(TokExtends) {
		parent, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		d.Extends = parent.Text
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.err == nil && p.tok.Kind != TokRBrace {
		switch p.tok.Kind {
		case TokInside:
			if d.Inside != nil {
				return nil, p.errorf("duplicate inside clause")
			}
			p.next()
			dep, err := p.parseDep()
			if err != nil {
				return nil, err
			}
			d.Inside = dep
		case TokEnv:
			p.next()
			dep, err := p.parseDep()
			if err != nil {
				return nil, err
			}
			d.Envs = append(d.Envs, dep)
		case TokPeer:
			p.next()
			dep, err := p.parseDep()
			if err != nil {
				return nil, err
			}
			d.Peers = append(d.Peers, dep)
		case TokInput:
			p.next()
			ports, err := p.parsePortSection()
			if err != nil {
				return nil, err
			}
			d.Inputs = append(d.Inputs, ports...)
		case TokConfig:
			p.next()
			ports, err := p.parsePortSection()
			if err != nil {
				return nil, err
			}
			d.Configs = append(d.Configs, ports...)
		case TokOutput:
			p.next()
			ports, err := p.parsePortSection()
			if err != nil {
				return nil, err
			}
			d.Outputs = append(d.Outputs, ports...)
		case TokIdent:
			if p.tok.Text == "driver" {
				if d.Driver != nil {
					return nil, p.errorf("duplicate driver clause")
				}
				p.next()
				drv, err := p.parseDriver()
				if err != nil {
					return nil, err
				}
				d.Driver = drv
				continue
			}
			if p.tok.Text == "health" {
				if d.Health != nil {
					return nil, p.errorf("duplicate health clause")
				}
				pos := p.tok.Pos
				p.next()
				h, err := p.parseHealth(pos)
				if err != nil {
					return nil, err
				}
				d.Health = h
				continue
			}
			return nil, p.errorf("expected clause (inside/env/peer/input/config/output/driver/health), found %s", p.tok)
		default:
			return nil, p.errorf("expected clause (inside/env/peer/input/config/output/driver/health), found %s", p.tok)
		}
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return d, p.err
}

// parseDep parses a dependency target and optional port-map block:
// `"Key"` or `one_of("K1", "K2")`, then `{ a -> b  reverse c -> d }`.
func (p *Parser) parseDep() (*DepDecl, error) {
	dep := &DepDecl{Pos: p.tok.Pos}
	switch p.tok.Kind {
	case TokString:
		dep.Targets = []string{p.tok.Text}
		p.next()
	case TokOneOf:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for {
			t, err := p.expect(TokString)
			if err != nil {
				return nil, err
			}
			dep.Targets = append(dep.Targets, t.Text)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	default:
		return nil, p.errorf("expected dependency target, found %s", p.tok)
	}

	if p.accept(TokLBrace) {
		for p.err == nil && p.tok.Kind != TokRBrace {
			entry := PortMapEntry{Pos: p.tok.Pos}
			if p.accept(TokReverse) {
				entry.Reverse = true
			}
			from, err := p.portName()
			if err != nil {
				return nil, err
			}
			entry.From = from
			if _, err := p.expect(TokArrow); err != nil {
				return nil, err
			}
			to, err := p.portName()
			if err != nil {
				return nil, err
			}
			entry.To = to
			dep.Maps = append(dep.Maps, entry)
			p.accept(TokComma)
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
	}
	return dep, p.err
}

// portName accepts an identifier, tolerating the section keywords so
// ports may be named e.g. "config".
func (p *Parser) portName() (string, error) {
	switch p.tok.Kind {
	case TokIdent, TokInput, TokConfig, TokOutput, TokEnv, TokPeer, TokInside:
		name := p.tok.Text
		p.next()
		return name, p.err
	default:
		return "", p.errorf("expected port name, found %s", p.tok)
	}
}

// parsePortSection parses `{ portDecl* }`.
func (p *Parser) parsePortSection() ([]*PortDecl, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	var out []*PortDecl
	for p.err == nil && p.tok.Kind != TokRBrace {
		pd := &PortDecl{Pos: p.tok.Pos}
		if p.accept(TokStatic) {
			pd.Static = true
		}
		name, err := p.portName()
		if err != nil {
			return nil, err
		}
		pd.Name = name
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pd.Type = ty
		if p.accept(TokEquals) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			pd.Def = e
		}
		p.accept(TokComma)
		out = append(out, pd)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return out, p.err
}

// parseDriver parses the body of a `driver { … }` clause.
func (p *Parser) parseDriver() (*DriverDecl, error) {
	d := &DriverDecl{Pos: p.tok.Pos}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.err == nil && p.tok.Kind != TokRBrace {
		if p.tok.Kind == TokIdent && p.tok.Text == "states" {
			p.next()
			if _, err := p.expect(TokLBrace); err != nil {
				return nil, err
			}
			for p.err == nil && p.tok.Kind != TokRBrace {
				name, err := p.portName()
				if err != nil {
					return nil, err
				}
				d.States = append(d.States, name)
				p.accept(TokComma)
			}
			if _, err := p.expect(TokRBrace); err != nil {
				return nil, err
			}
			continue
		}
		tr := TransitionDecl{Pos: p.tok.Pos}
		name, err := p.portName()
		if err != nil {
			return nil, err
		}
		tr.Name = name
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		if tr.From, err = p.portName(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokArrow); err != nil {
			return nil, err
		}
		if tr.To, err = p.portName(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokIdent && p.tok.Text == "when" {
			p.next()
			for {
				g, err := p.parseGuardPred()
				if err != nil {
					return nil, err
				}
				tr.Guards = append(tr.Guards, g)
				if !p.accept(TokComma) {
					break
				}
			}
		}
		if p.tok.Kind == TokIdent && p.tok.Text == "exec" {
			p.next()
			s, err := p.expect(TokString)
			if err != nil {
				return nil, err
			}
			tr.Action = s.Text
		}
		d.Transitions = append(d.Transitions, tr)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return d, p.err
}

// parseHealth parses the body of a `health { … }` clause: probe lines
// plus the interval/timeout/failures/successes settings, in any order.
func (p *Parser) parseHealth(pos Pos) (*HealthDecl, error) {
	h := &HealthDecl{Pos: pos}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	str := func() (Token, error) { p.next(); return p.expect(TokString) }
	num := func() (Token, error) { p.next(); return p.expect(TokInt) }
	for p.err == nil && p.tok.Kind != TokRBrace {
		if p.tok.Kind != TokIdent {
			return nil, p.errorf("expected health setting (probe/interval/timeout/failures/successes), found %s", p.tok)
		}
		setPos := p.tok.Pos
		switch p.tok.Text {
		case "probe":
			t, err := str()
			if err != nil {
				return nil, err
			}
			h.Probes = append(h.Probes, ProbeDecl{Pos: setPos, Kind: t.Text})
		case "interval":
			if h.Interval != "" {
				return nil, p.errorf("duplicate interval setting")
			}
			t, err := str()
			if err != nil {
				return nil, err
			}
			h.Interval, h.IntervalPos = t.Text, t.Pos
		case "timeout":
			if h.Timeout != "" {
				return nil, p.errorf("duplicate timeout setting")
			}
			t, err := str()
			if err != nil {
				return nil, err
			}
			h.Timeout, h.TimeoutPos = t.Text, t.Pos
		case "failures":
			t, err := num()
			if err != nil {
				return nil, err
			}
			h.Failures = t.Int
		case "successes":
			t, err := num()
			if err != nil {
				return nil, err
			}
			h.Successes = t.Int
		default:
			return nil, p.errorf("expected health setting (probe/interval/timeout/failures/successes), found %s", p.tok)
		}
		p.accept(TokComma)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return h, p.err
}

// parseGuardPred parses `up(state)` or `down(state)`.
func (p *Parser) parseGuardPred() (GuardDecl, error) {
	if p.tok.Kind != TokIdent || (p.tok.Text != "up" && p.tok.Text != "down") {
		return GuardDecl{}, p.errorf("expected up(...) or down(...), found %s", p.tok)
	}
	g := GuardDecl{Up: p.tok.Text == "up"}
	p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return GuardDecl{}, err
	}
	state, err := p.portName()
	if err != nil {
		return GuardDecl{}, err
	}
	g.State = state
	if _, err := p.expect(TokRParen); err != nil {
		return GuardDecl{}, err
	}
	return g, nil
}

// parseType parses a type expression.
func (p *Parser) parseType() (TypeExpr, error) {
	switch p.tok.Kind {
	case TokIdent:
		t := NamedType{Pos: p.tok.Pos, Name: p.tok.Text}
		p.next()
		return t, p.err
	case TokSecretLit: // `secret` doubles as a type name
		t := NamedType{Pos: p.tok.Pos, Name: "secret"}
		p.next()
		return t, p.err
	case TokStruct:
		pos := p.tok.Pos
		p.next()
		if _, err := p.expect(TokLBrace); err != nil {
			return nil, err
		}
		st := StructTypeExpr{Pos: pos}
		for p.err == nil && p.tok.Kind != TokRBrace {
			name, err := p.portName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			ft, err := p.parseType()
			if err != nil {
				return nil, err
			}
			st.Fields = append(st.Fields, StructTypeField{Name: name, Type: ft})
			p.accept(TokComma)
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		return st, p.err
	case TokList:
		pos := p.tok.Pos
		p.next()
		if _, err := p.expect(TokLBrack); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBrack); err != nil {
			return nil, err
		}
		return ListTypeExpr{Pos: pos, Elem: elem}, p.err
	default:
		return nil, p.errorf("expected type, found %s", p.tok)
	}
}

// parseExpr parses a port-value expression.
func (p *Parser) parseExpr() (ExprNode, error) {
	switch p.tok.Kind {
	case TokString:
		e := StrLit{Pos: p.tok.Pos, Val: p.tok.Text}
		p.next()
		return e, p.err
	case TokInt:
		e := IntLit{Pos: p.tok.Pos, Val: p.tok.Int}
		p.next()
		return e, p.err
	case TokTrue:
		e := BoolLit{Pos: p.tok.Pos, Val: true}
		p.next()
		return e, p.err
	case TokFalse:
		e := BoolLit{Pos: p.tok.Pos, Val: false}
		p.next()
		return e, p.err
	case TokSecretLit:
		pos := p.tok.Pos
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		s, err := p.expect(TokString)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return SecretLit{Pos: pos, Val: s.Text}, p.err
	case TokInput, TokConfig:
		pos := p.tok.Pos
		section := p.tok.Text
		p.next()
		if _, err := p.expect(TokDot); err != nil {
			return nil, err
		}
		name, err := p.portName()
		if err != nil {
			return nil, err
		}
		ref := RefExpr{Pos: pos, Section: section, Name: name}
		for p.accept(TokDot) {
			f, err := p.portName()
			if err != nil {
				return nil, err
			}
			ref.Path = append(ref.Path, f)
		}
		return ref, p.err
	case TokConcat:
		pos := p.tok.Pos
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		c := ConcatExpr{Pos: pos}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, e)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return c, p.err
	case TokLBrack:
		pos := p.tok.Pos
		p.next()
		ll := ListLit{Pos: pos}
		for p.err == nil && p.tok.Kind != TokRBrack {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			ll.Elems = append(ll.Elems, e)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRBrack); err != nil {
			return nil, err
		}
		return ll, p.err
	case TokLBrace:
		pos := p.tok.Pos
		p.next()
		sl := StructLit{Pos: pos}
		for p.err == nil && p.tok.Kind != TokRBrace {
			name, err := p.portName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sl.Fields = append(sl.Fields, StructLitField{Name: name, Expr: e})
			p.accept(TokComma)
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		return sl, p.err
	default:
		return nil, p.errorf("expected expression, found %s", p.tok)
	}
}
