package rdl

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"engage/internal/resource"
	"engage/internal/version"
)

// Resolve lowers parsed RDL files into a resource.Registry:
//
//  1. declarations are ordered so parents precede children (extends is
//     a DAG; cycles are reported);
//  2. port types and value expressions are lowered to the resource
//     package's representations;
//  3. version-range dependency targets ("Tomcat [5.5, 6.0.29)") are
//     expanded into disjunctions of the declared concrete versions in
//     the range (§3.4 sugar).
//
// Resolve does not run the well-formedness checker; callers compose with
// typecheck.CheckTypes.
func Resolve(files ...*File) (*resource.Registry, error) {
	var decls []*ResourceDecl
	for _, f := range files {
		decls = append(decls, f.Decls...)
	}

	ordered, err := orderByExtends(decls)
	if err != nil {
		return nil, err
	}

	versions := collectVersions(decls)
	reg := resource.NewRegistry()
	for _, d := range ordered {
		t, err := lowerResource(d, versions)
		if err != nil {
			return nil, err
		}
		if err := reg.Add(t); err != nil {
			return nil, &Error{Pos: d.Pos, Msg: err.Error()}
		}
	}
	return reg, nil
}

// versionIndex maps a package name to its declared concrete versioned
// keys, sorted by version; used for version-range expansion.
type versionIndex map[string][]resource.Key

func collectVersions(decls []*ResourceDecl) versionIndex {
	idx := make(versionIndex)
	for _, d := range decls {
		if d.Abstract {
			continue
		}
		k := resource.ParseKey(d.Key)
		if _, ok := k.Ver(); !ok {
			continue
		}
		idx[k.Name] = append(idx[k.Name], k)
	}
	for name, keys := range idx {
		sort.Slice(keys, func(i, j int) bool {
			vi, _ := keys[i].Ver()
			vj, _ := keys[j].Ver()
			return vi.Less(vj)
		})
		idx[name] = keys
	}
	return idx
}

func (idx versionIndex) inRange(name string, rng version.Range) []resource.Key {
	var out []resource.Key
	for _, k := range idx[name] {
		v, _ := k.Ver()
		if rng.Contains(v) {
			out = append(out, k)
		}
	}
	return out
}

func lowerResource(d *ResourceDecl, versions versionIndex) (*resource.Type, error) {
	t := &resource.Type{
		Key:      resource.ParseKey(d.Key),
		Abstract: d.Abstract,
		Doc:      d.Doc,
		Origin:   d.Pos.String(),
	}
	if d.Extends != "" {
		k := resource.ParseKey(d.Extends)
		t.Extends = &k
	}
	var err error
	if t.Input, err = lowerPorts(d.Inputs); err != nil {
		return nil, err
	}
	if t.Config, err = lowerPorts(d.Configs); err != nil {
		return nil, err
	}
	if t.Output, err = lowerPorts(d.Outputs); err != nil {
		return nil, err
	}
	if d.Inside != nil {
		dep, err := lowerDep(d.Inside, versions)
		if err != nil {
			return nil, err
		}
		t.Inside = &dep
	}
	for _, dd := range d.Envs {
		dep, err := lowerDep(dd, versions)
		if err != nil {
			return nil, err
		}
		t.Env = append(t.Env, dep)
	}
	for _, dd := range d.Peers {
		dep, err := lowerDep(dd, versions)
		if err != nil {
			return nil, err
		}
		t.Peer = append(t.Peer, dep)
	}
	if d.Driver != nil {
		t.Driver = lowerDriver(d.Driver)
	}
	if d.Health != nil {
		h, err := lowerHealth(d.Health)
		if err != nil {
			return nil, err
		}
		t.Health = h
	}
	return t, nil
}

// lowerHealth lowers a health clause, parsing its duration literals and
// filling the documented defaults for omitted settings.
func lowerHealth(d *HealthDecl) (*resource.HealthSpec, error) {
	h := &resource.HealthSpec{
		Interval:         30 * time.Second,
		Timeout:          5 * time.Second,
		FailureThreshold: 3,
		SuccessThreshold: 2,
		Origin:           d.Pos.String(),
	}
	for _, pr := range d.Probes {
		h.Probes = append(h.Probes, pr.Kind)
	}
	if d.Interval != "" {
		dur, err := time.ParseDuration(d.Interval)
		if err != nil {
			return nil, &Error{Pos: d.IntervalPos, Msg: fmt.Sprintf("bad interval %q: %v", d.Interval, err)}
		}
		h.Interval = dur
	}
	if d.Timeout != "" {
		dur, err := time.ParseDuration(d.Timeout)
		if err != nil {
			return nil, &Error{Pos: d.TimeoutPos, Msg: fmt.Sprintf("bad timeout %q: %v", d.Timeout, err)}
		}
		h.Timeout = dur
	}
	if d.Failures != 0 {
		h.FailureThreshold = d.Failures
	}
	if d.Successes != 0 {
		h.SuccessThreshold = d.Successes
	}
	return h, nil
}

func lowerDriver(d *DriverDecl) *resource.DriverSpec {
	spec := &resource.DriverSpec{States: append([]string(nil), d.States...)}
	for _, tr := range d.Transitions {
		lt := resource.DriverTransition{
			Name:   tr.Name,
			From:   tr.From,
			To:     tr.To,
			Action: tr.Action,
		}
		for _, g := range tr.Guards {
			lt.Guards = append(lt.Guards, resource.DriverGuard{Up: g.Up, State: g.State})
		}
		spec.Transitions = append(spec.Transitions, lt)
	}
	return spec
}

func orderByExtends(decls []*ResourceDecl) ([]*ResourceDecl, error) {
	byKey := make(map[string]*ResourceDecl, len(decls))
	for _, d := range decls {
		k := resource.ParseKey(d.Key).String()
		if byKey[k] != nil {
			return nil, &Error{Pos: d.Pos, Msg: fmt.Sprintf("duplicate resource %q", d.Key)}
		}
		byKey[k] = d
	}
	const (
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(decls))
	out := make([]*ResourceDecl, 0, len(decls))
	var visit func(d *ResourceDecl) error
	visit = func(d *ResourceDecl) error {
		k := resource.ParseKey(d.Key).String()
		switch color[k] {
		case gray:
			return &Error{Pos: d.Pos, Msg: fmt.Sprintf("inheritance cycle at %q", d.Key)}
		case black:
			return nil
		}
		color[k] = gray
		if d.Extends != "" {
			pk := resource.ParseKey(d.Extends).String()
			parent, ok := byKey[pk]
			if !ok {
				return &Error{Pos: d.Pos, Msg: fmt.Sprintf("%q extends unknown resource %q", d.Key, d.Extends)}
			}
			if err := visit(parent); err != nil {
				return err
			}
		}
		color[k] = black
		out = append(out, d)
		return nil
	}
	for _, d := range decls {
		if err := visit(d); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func lowerPorts(decls []*PortDecl) ([]resource.Port, error) {
	var out []resource.Port
	seen := make(map[string]bool, len(decls))
	for _, pd := range decls {
		if seen[pd.Name] {
			return nil, &Error{Pos: pd.Pos, Msg: fmt.Sprintf("duplicate port %q", pd.Name)}
		}
		seen[pd.Name] = true
		ty, err := lowerType(pd.Type)
		if err != nil {
			return nil, err
		}
		p := resource.Port{Name: pd.Name, Type: ty, Static: pd.Static, Origin: pd.Pos.String()}
		if pd.Def != nil {
			e, err := lowerExpr(pd.Def)
			if err != nil {
				return nil, err
			}
			p.Def = e
		}
		out = append(out, p)
	}
	return out, nil
}

func lowerType(te TypeExpr) (resource.PortType, error) {
	switch t := te.(type) {
	case NamedType:
		k, ok := resource.KindFromName(t.Name)
		if !ok {
			return resource.PortType{}, &Error{Pos: t.Pos, Msg: fmt.Sprintf("unknown type %q", t.Name)}
		}
		if k == resource.KindStruct || k == resource.KindList {
			return resource.PortType{}, &Error{Pos: t.Pos, Msg: fmt.Sprintf("%q requires field/element syntax", t.Name)}
		}
		return resource.T(k), nil
	case StructTypeExpr:
		fields := make(map[string]resource.PortType, len(t.Fields))
		for _, f := range t.Fields {
			if _, dup := fields[f.Name]; dup {
				return resource.PortType{}, &Error{Pos: t.Pos, Msg: fmt.Sprintf("duplicate struct field %q", f.Name)}
			}
			ft, err := lowerType(f.Type)
			if err != nil {
				return resource.PortType{}, err
			}
			fields[f.Name] = ft
		}
		return resource.StructType(fields), nil
	case ListTypeExpr:
		elem, err := lowerType(t.Elem)
		if err != nil {
			return resource.PortType{}, err
		}
		return resource.ListType(elem), nil
	default:
		return resource.PortType{}, fmt.Errorf("rdl: unknown type expression %T", te)
	}
}

func lowerExpr(en ExprNode) (resource.Expr, error) {
	switch e := en.(type) {
	case StrLit:
		return resource.Lit{V: resource.Str(e.Val)}, nil
	case IntLit:
		return resource.Lit{V: resource.IntV(e.Val)}, nil
	case BoolLit:
		return resource.Lit{V: resource.BoolV(e.Val)}, nil
	case SecretLit:
		return resource.Lit{V: resource.SecretV(e.Val)}, nil
	case RefExpr:
		var sec resource.Section
		switch e.Section {
		case "input":
			sec = resource.SecInput
		case "config":
			sec = resource.SecConfig
		default:
			return nil, &Error{Pos: e.Pos, Msg: fmt.Sprintf("references must start with input or config, got %q", e.Section)}
		}
		return resource.Ref{Sec: sec, Name: e.Name, Path: e.Path}, nil
	case ConcatExpr:
		args := make([]resource.Expr, len(e.Args))
		for i, a := range e.Args {
			la, err := lowerExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = la
		}
		return resource.Concat{Args: args}, nil
	case ListLit:
		elems := make([]resource.Expr, len(e.Elems))
		for i, el := range e.Elems {
			le, err := lowerExpr(el)
			if err != nil {
				return nil, err
			}
			elems[i] = le
		}
		return resource.MakeList{Elems: elems}, nil
	case StructLit:
		fields := make(map[string]resource.Expr, len(e.Fields))
		for _, f := range e.Fields {
			if _, dup := fields[f.Name]; dup {
				return nil, &Error{Pos: e.Pos, Msg: fmt.Sprintf("duplicate struct field %q", f.Name)}
			}
			le, err := lowerExpr(f.Expr)
			if err != nil {
				return nil, err
			}
			fields[f.Name] = le
		}
		return resource.MakeStruct{Fields: fields}, nil
	default:
		return nil, fmt.Errorf("rdl: unknown expression %T", en)
	}
}

// lowerDep lowers a dependency declaration, expanding version-range
// targets against the declared version index.
func lowerDep(dd *DepDecl, versions versionIndex) (resource.Dependency, error) {
	dep := resource.Dependency{}
	for _, raw := range dd.Targets {
		name, rng, hasRange, err := parseTarget(raw)
		if err != nil {
			return dep, &Error{Pos: dd.Pos, Msg: err.Error()}
		}
		if !hasRange {
			dep.Alternatives = append(dep.Alternatives, resource.ParseKey(raw))
			continue
		}
		keys := versions.inRange(name, rng)
		if len(keys) == 0 {
			return dep, &Error{Pos: dd.Pos, Msg: fmt.Sprintf(
				"no declared version of %q in range %s", name, rng)}
		}
		dep.Alternatives = append(dep.Alternatives, keys...)
	}
	for _, m := range dd.Maps {
		if m.Reverse {
			if dep.ReversePortMap == nil {
				dep.ReversePortMap = make(map[string]string)
			}
			if _, dup := dep.ReversePortMap[m.From]; dup {
				return dep, &Error{Pos: m.Pos, Msg: fmt.Sprintf("duplicate reverse mapping of %q", m.From)}
			}
			dep.ReversePortMap[m.From] = m.To
		} else {
			if dep.PortMap == nil {
				dep.PortMap = make(map[string]string)
			}
			if _, dup := dep.PortMap[m.From]; dup {
				return dep, &Error{Pos: m.Pos, Msg: fmt.Sprintf("duplicate mapping of %q", m.From)}
			}
			dep.PortMap[m.From] = m.To
		}
	}
	return dep, nil
}

// parseTarget splits a dependency target that may embed a version range:
// "Tomcat [5.5, 6.0.29)" → ("Tomcat", range). Plain keys return
// hasRange=false.
func parseTarget(s string) (name string, rng version.Range, hasRange bool, err error) {
	i := strings.IndexAny(s, "[(")
	if i < 0 {
		return s, version.Range{}, false, nil
	}
	last := s[len(s)-1]
	if last != ')' && last != ']' {
		return s, version.Range{}, false, nil
	}
	name = strings.TrimSpace(s[:i])
	if name == "" {
		return "", version.Range{}, false, fmt.Errorf("version-range target %q has no package name", s)
	}
	r, err := version.ParseRange(s[i:])
	if err != nil {
		return "", version.Range{}, false, fmt.Errorf("target %q: %v", s, err)
	}
	return name, r, true, nil
}

// ParseAndResolve parses one or more named sources and resolves them
// into a registry; the common entry point for library and CLI use.
func ParseAndResolve(sources map[string]string) (*resource.Registry, error) {
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]*File, 0, len(sources))
	for _, n := range names {
		f, err := Parse(n, sources[n])
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return Resolve(files...)
}
