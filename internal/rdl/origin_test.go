package rdl

import (
	"strings"
	"testing"

	"engage/internal/resource"
)

// TestResolveTracksOrigins: resolved types and ports carry the source
// position of their RDL declarations, for diagnostics to point at.
func TestResolveTracksOrigins(t *testing.T) {
	const src = `
resource "Box 1" {
    config { name: string = "box" }
}
resource "Svc 1" {
    inside "Box 1"
    output { addr: string = "here" }
}`
	reg, err := ParseAndResolve(map[string]string{"lib.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	box := reg.MustLookup(resource.MakeKey("Box", "1"))
	if box.Origin != "lib.rdl:2:1" {
		t.Fatalf("Box origin = %q, want lib.rdl:2:1", box.Origin)
	}
	svc := reg.MustLookup(resource.MakeKey("Svc", "1"))
	if !strings.HasPrefix(svc.Origin, "lib.rdl:5:") {
		t.Fatalf("Svc origin = %q, want lib.rdl:5:*", svc.Origin)
	}
	cp, ok := box.FindPort(resource.SecConfig, "name")
	if !ok || !strings.HasPrefix(cp.Origin, "lib.rdl:3:") {
		t.Fatalf("config port origin = %q (found %v), want lib.rdl:3:*", cp.Origin, ok)
	}
	op, ok := svc.FindPort(resource.SecOutput, "addr")
	if !ok || !strings.HasPrefix(op.Origin, "lib.rdl:7:") {
		t.Fatalf("output port origin = %q (found %v), want lib.rdl:7:*", op.Origin, ok)
	}
}
