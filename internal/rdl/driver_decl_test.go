package rdl

import (
	"strings"
	"testing"

	"engage/internal/resource"
)

const driverRDL = `
abstract resource "Server" {}
resource "Cache 1.4" {
    inside "Server"
    config { port: tcp_port = 11211 }
    driver {
        states { uninstalled, inactive, active, degraded }
        install:   uninstalled -> inactive                  exec "pkg_install"
        start:     inactive -> active   when up(active)     exec "spawn_daemon"
        stop:      active -> inactive   when down(inactive) exec "kill_daemon"
        degrade:   active -> degraded
        recover:   degraded -> active   when up(active), down(inactive) exec "spawn_daemon"
        uninstall: inactive -> uninstalled                  exec "pkg_remove"
    }
}`

func TestParseDriverClause(t *testing.T) {
	reg, err := ParseAndResolve(map[string]string{"d.rdl": driverRDL})
	if err != nil {
		t.Fatal(err)
	}
	c := reg.MustLookup(resource.MakeKey("Cache", "1.4"))
	if c.Driver == nil {
		t.Fatal("driver spec missing")
	}
	if len(c.Driver.States) != 4 {
		t.Errorf("states = %v", c.Driver.States)
	}
	if len(c.Driver.Transitions) != 6 {
		t.Fatalf("transitions = %d", len(c.Driver.Transitions))
	}
	start := c.Driver.Transitions[1]
	if start.Name != "start" || start.From != "inactive" || start.To != "active" ||
		start.Action != "spawn_daemon" {
		t.Errorf("start transition = %+v", start)
	}
	if len(start.Guards) != 1 || !start.Guards[0].Up || start.Guards[0].State != "active" {
		t.Errorf("start guard = %+v", start.Guards)
	}
	recover := c.Driver.Transitions[4]
	if len(recover.Guards) != 2 || recover.Guards[0].Up == recover.Guards[1].Up {
		t.Errorf("recover guards = %+v", recover.Guards)
	}
	degrade := c.Driver.Transitions[3]
	if degrade.Action != "" {
		t.Errorf("bookkeeping transition should have no action: %+v", degrade)
	}
}

func TestDriverClauseInherited(t *testing.T) {
	src := driverRDL + `
resource "Cache-Pro 2.0" extends "Cache 1.4" {}`
	reg, err := ParseAndResolve(map[string]string{"d.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	pro := reg.MustLookup(resource.MakeKey("Cache-Pro", "2.0"))
	if pro.Driver == nil || len(pro.Driver.Transitions) != 6 {
		t.Error("driver spec should be inherited")
	}
}

func TestDriverClauseFormatRoundTrip(t *testing.T) {
	reg, err := ParseAndResolve(map[string]string{"d.rdl": driverRDL})
	if err != nil {
		t.Fatal(err)
	}
	text := Format(reg.MustLookup(resource.MakeKey("Cache", "1.4")))
	for _, want := range []string{
		"driver {",
		"states { uninstalled, inactive, active, degraded }",
		`exec "spawn_daemon"`,
		"when up(active), down(inactive)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted driver missing %q:\n%s", want, text)
		}
	}
	full := `abstract resource "Server" {}` + "\n" + text
	reg2, err := ParseAndResolve(map[string]string{"again.rdl": full})
	if err != nil {
		t.Fatalf("formatted driver does not re-parse: %v\n%s", err, text)
	}
	c2 := reg2.MustLookup(resource.MakeKey("Cache", "1.4"))
	if c2.Driver == nil || len(c2.Driver.Transitions) != 6 {
		t.Error("driver lost in round trip")
	}
}

func TestDriverClauseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`resource "A 1" { driver {} driver {} }`, "duplicate driver"},
		{`resource "A 1" { driver { x } }`, "expected ':'"},
		{`resource "A 1" { driver { x: a b } }`, "expected '->'"},
		{`resource "A 1" { driver { x: a -> b when sideways(c) } }`, "expected up"},
		{`resource "A 1" { driver { x: a -> b exec 42 } }`, "expected string"},
	}
	for _, c := range cases {
		_, err := Parse("t", c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %v, want %q", c.src, err, c.want)
		}
	}
}
