package rdl

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Lexer turns RDL source into tokens. Line comments (`// …`) preceding a
// declaration are collected as doc comments and attached to the next
// token; block comments (`/* … */`) are skipped.
type Lexer struct {
	file string
	src  string
	off  int
	line int
	col  int

	pendingDoc []string
}

// NewLexer returns a lexer over src; file is used in positions.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1}
}

// Error is a lexical or syntactic error with position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) errorf(format string, args ...any) error {
	return &Error{Pos: l.pos(), Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) advance() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	start := l.pos()
	doc := strings.Join(l.pendingDoc, "\n")
	l.pendingDoc = nil

	r := l.peek()
	switch {
	case r == 0:
		return Token{Kind: TokEOF, Pos: start, Doc: doc}, nil
	case r == '"':
		s, err := l.lexString()
		if err != nil {
			return Token{}, err
		}
		return Token{Kind: TokString, Pos: start, Text: s, Doc: doc}, nil
	case unicode.IsDigit(r):
		n := 0
		for unicode.IsDigit(l.peek()) {
			n = n*10 + int(l.advance()-'0')
		}
		return Token{Kind: TokInt, Pos: start, Int: n, Doc: doc}, nil
	case r == '_' || unicode.IsLetter(r):
		var b strings.Builder
		for {
			r := l.peek()
			if r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) {
				b.WriteRune(l.advance())
			} else {
				break
			}
		}
		word := b.String()
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Pos: start, Text: word, Doc: doc}, nil
		}
		return Token{Kind: TokIdent, Pos: start, Text: word, Doc: doc}, nil
	}

	l.advance()
	switch r {
	case '{':
		return Token{Kind: TokLBrace, Pos: start, Doc: doc}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: start, Doc: doc}, nil
	case '(':
		return Token{Kind: TokLParen, Pos: start, Doc: doc}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: start, Doc: doc}, nil
	case '[':
		return Token{Kind: TokLBrack, Pos: start, Doc: doc}, nil
	case ']':
		return Token{Kind: TokRBrack, Pos: start, Doc: doc}, nil
	case ':':
		return Token{Kind: TokColon, Pos: start, Doc: doc}, nil
	case ',':
		return Token{Kind: TokComma, Pos: start, Doc: doc}, nil
	case '=':
		return Token{Kind: TokEquals, Pos: start, Doc: doc}, nil
	case '.':
		return Token{Kind: TokDot, Pos: start, Doc: doc}, nil
	case '-':
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: TokArrow, Pos: start, Doc: doc}, nil
		}
		return Token{}, &Error{Pos: start, Msg: "unexpected '-' (did you mean '->'?)"}
	default:
		return Token{}, &Error{Pos: start, Msg: fmt.Sprintf("unexpected character %q", r)}
	}
}

// skipSpace consumes whitespace and comments, collecting doc comments.
func (l *Lexer) skipSpace() error {
	for {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r':
			l.advance()
		case r == '\n':
			// A blank line detaches pending doc comments.
			l.advance()
			if l.peek() == '\n' {
				l.pendingDoc = nil
			}
		case r == '/':
			if l.off+1 < len(l.src) && l.src[l.off+1] == '/' {
				l.advance()
				l.advance()
				var b strings.Builder
				for l.peek() != '\n' && l.peek() != 0 {
					b.WriteRune(l.advance())
				}
				l.pendingDoc = append(l.pendingDoc, strings.TrimSpace(b.String()))
			} else if l.off+1 < len(l.src) && l.src[l.off+1] == '*' {
				l.advance()
				l.advance()
				closed := false
				for l.peek() != 0 {
					if l.peek() == '*' {
						l.advance()
						if l.peek() == '/' {
							l.advance()
							closed = true
							break
						}
					} else {
						l.advance()
					}
				}
				if !closed {
					return l.errorf("unterminated block comment")
				}
			} else {
				return l.errorf("unexpected '/'")
			}
		default:
			return nil
		}
	}
}

func (l *Lexer) lexString() (string, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		r := l.peek()
		switch r {
		case 0, '\n':
			return "", l.errorf("unterminated string literal")
		case '"':
			l.advance()
			return b.String(), nil
		case '\\':
			l.advance()
			esc := l.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return "", l.errorf("unknown escape \\%c", esc)
			}
		default:
			b.WriteRune(l.advance())
		}
	}
}

// LexAll tokenizes the entire input; used by tests.
func LexAll(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
