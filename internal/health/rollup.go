package health

// Rollups: instance health aggregates worst-of with counts, up the
// instance → machine → stack hierarchy. State is ordered by severity,
// so worst-of is a max.

import "sort"

// Summary is a worst-of aggregate with per-state counts.
type Summary struct {
	State      string `json:"state"`
	Healthy    int    `json:"healthy"`
	Suspect    int    `json:"suspect"`
	Recovering int    `json:"recovering"`
	Unhealthy  int    `json:"unhealthy"`

	worst State
}

// WorstState returns the typed worst state behind the JSON string.
func (s Summary) WorstState() State { return s.worst }

// Total is the number of instances summarized.
func (s Summary) Total() int { return s.Healthy + s.Suspect + s.Recovering + s.Unhealthy }

func (s *Summary) add(st State) {
	switch st {
	case Healthy:
		s.Healthy++
	case Suspect:
		s.Suspect++
	case Recovering:
		s.Recovering++
	case Unhealthy:
		s.Unhealthy++
	}
	if st > s.worst {
		s.worst = st
	}
	s.State = s.worst.String()
}

// Summarize aggregates instance healths into a worst-of summary. An
// empty set is Healthy (nothing is wrong with nothing).
func Summarize(states []InstanceHealth) Summary {
	s := Summary{State: Healthy.String()}
	for _, ih := range states {
		s.add(ih.HealthState())
	}
	return s
}

// MachineRollup is one machine's worst-of aggregate with its instances.
type MachineRollup struct {
	Machine   string           `json:"machine"`
	Summary   Summary          `json:"summary"`
	Instances []InstanceHealth `json:"instances"`
}

// ByMachine groups instance healths into per-machine rollups, sorted by
// machine name; instances with no recorded machine group under "".
func ByMachine(states []InstanceHealth) []MachineRollup {
	byName := make(map[string]*MachineRollup)
	var names []string
	for _, ih := range states {
		r, ok := byName[ih.Machine]
		if !ok {
			r = &MachineRollup{Machine: ih.Machine, Summary: Summary{State: Healthy.String()}}
			byName[ih.Machine] = r
			names = append(names, ih.Machine)
		}
		r.Instances = append(r.Instances, ih)
		r.Summary.add(ih.HealthState())
	}
	sort.Strings(names)
	out := make([]MachineRollup, 0, len(names))
	for _, n := range names {
		out = append(out, *byName[n])
	}
	return out
}

// StackRollup is one stack's full health rollup: the stack-level
// worst-of summary plus its per-machine breakdown.
type StackRollup struct {
	Stack    string          `json:"stack"`
	Summary  Summary         `json:"summary"`
	Machines []MachineRollup `json:"machines"`
}

// RollupStack builds a stack rollup from a checker's current states.
func RollupStack(name string, states []InstanceHealth) StackRollup {
	return StackRollup{
		Stack:    name,
		Summary:  Summarize(states),
		Machines: ByMachine(states),
	}
}
