// Package health implements Engage's fleet health subsystem: a probe
// scheduler over the virtual clock driving a per-instance state machine
// Healthy → Suspect → Unhealthy → Recovering, with flap damping.
//
// Resources declare probes in their RDL `health` block
// (resource.HealthSpec); the stack controller registers one Target per
// daemon-backed binding, and the monitor loop ticks the Checker on the
// same sweep cadence as process watching. Probes read the simulated
// world — a port check asks the machine's port table, a process check
// its process table — so they cost no wall time and never touch the
// wallclock: every stamp comes from the machine substrate's virtual
// clock, and detection latency is exactly bounded by
// FailureThreshold × Interval of virtual time.
//
// The synthetic "check" probe consults a CheckSource (the fault plan's
// seeded sickness rules), which is how chaos soaks make a
// running-but-sick daemon observable.
package health

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"engage/internal/machine"
	"engage/internal/resource"
	"engage/internal/telemetry"
)

// State is an instance's health, ordered by severity so worst-of
// rollups are a max.
type State int

// Health states. Healthy instances pass probes; one failure makes them
// Suspect; FailureThreshold consecutive failures make them Unhealthy (a
// reconciler drift); an Unhealthy instance that passes a probe is
// Recovering and must pass SuccessThreshold consecutive rounds before
// it is Healthy again — the flap damping that keeps an intermittently
// sick daemon from oscillating Healthy ↔ Unhealthy.
const (
	Healthy State = iota
	Suspect
	Recovering
	Unhealthy
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Recovering:
		return "recovering"
	case Unhealthy:
		return "unhealthy"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// CheckSource answers the synthetic "check" probe: false means the
// instance is sick. internal/fault's Plan implements this with seeded
// sickness rules.
type CheckSource interface {
	HealthCheck(instance string, pid int, now time.Time) bool
}

// Target is what probes run against: one deployed instance's observed
// binding.
type Target struct {
	Instance string
	Machine  *machine.Machine
	// PID is the daemon process; 0 when the instance has none (the
	// proc-alive probe passes vacuously).
	PID int
	// Ports are the listening ports the port-open probe asserts.
	Ports []int
	// ManifestPath and Digest pin the config-digest probe: the manifest
	// file's sha256 must equal Digest.
	ManifestPath string
	Digest       string
}

// Digest hashes manifest content for Target.Digest.
func Digest(content string) string {
	sum := sha256.Sum256([]byte(content))
	return hex.EncodeToString(sum[:])
}

// entry is one tracked instance: its target, spec, state-machine
// counters, and probe schedule (virtual time).
type entry struct {
	target  Target
	spec    *resource.HealthSpec
	state   State
	fails   int // consecutive failing rounds
	succs   int // consecutive passing rounds while Recovering
	nextDue time.Time
	lastAt  time.Time
	lastOK  bool
	detail  string // what the last failing round saw
}

// Checker schedules probes and runs the health state machine for a set
// of tracked instances. It is not safe for concurrent use; like the
// monitor it is driven from one loop (the stack's reconcile/monitor
// sweep), with callers providing exclusion.
type Checker struct {
	// Clock is the virtual clock all schedules and stamps use.
	Clock *machine.Clock
	// Tracer, when non-nil, emits "health.probe" events per probe round
	// and "health.transition" events per state change.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, counts rounds/failures/transitions,
	// observes per-round latency, and keeps one "health.state.<id>"
	// gauge per instance at the state's severity code.
	Metrics *telemetry.Registry
	// Source answers "check" probes; nil passes them.
	Source CheckSource

	entries map[string]*entry
}

// NewChecker returns a checker on the given virtual clock.
func NewChecker(clock *machine.Clock) *Checker {
	return &Checker{Clock: clock, entries: make(map[string]*entry)}
}

// Track registers (or re-registers) an instance. A new instance starts
// Suspect — it must pass a probe round to prove itself Healthy. A
// re-tracked instance whose daemon PID changed (the reconciler replaced
// it) also resets to Suspect; re-tracking the same PID only refreshes
// the target's ports/manifest and keeps the state machine's memory.
func (c *Checker) Track(t Target, spec *resource.HealthSpec) {
	if spec == nil || len(spec.Probes) == 0 {
		return
	}
	now := c.Clock.Now()
	if e, ok := c.entries[t.Instance]; ok {
		samePID := e.target.PID == t.PID
		e.target, e.spec = t, spec
		if !samePID {
			c.setState(e, Suspect, "daemon replaced")
			e.fails, e.succs = 0, 0
			e.nextDue = now
		}
		return
	}
	e := &entry{target: t, spec: spec, state: Suspect, nextDue: now}
	c.entries[t.Instance] = e
	c.gauge(e)
}

// Forget drops an instance from the probe schedule.
func (c *Checker) Forget(instance string) {
	delete(c.entries, instance)
}

// MarkSuspect resets an instance to Suspect with cleared counters and
// an immediately-due probe: the monitor calls this when an operator (or
// the reconciler) clears a degraded instance, so forgiveness does not
// skip the proof of health.
func (c *Checker) MarkSuspect(instance string) {
	e, ok := c.entries[instance]
	if !ok {
		return
	}
	c.setState(e, Suspect, "cleared; must re-prove health")
	e.fails, e.succs = 0, 0
	e.nextDue = c.Clock.Now()
}

// Tracked lists tracked instance IDs, sorted.
func (c *Checker) Tracked() []string {
	out := make([]string, 0, len(c.entries))
	for id := range c.entries {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Observation is one probe round's outcome.
type Observation struct {
	Instance string
	// At is the round's virtual stamp.
	At time.Time
	OK bool
	// Probe is the failing probe's kind ("" when the round passed).
	Probe string
	// Detail says what the failing probe saw.
	Detail string
	From   State
	To     State
}

// Tick runs every probe round that is due at the current virtual time
// and reschedules each probed instance one interval out. It never
// advances the clock — the monitor loop owns time — so a sweep over any
// fleet size observes one instant.
func (c *Checker) Tick() []Observation {
	return c.sweep(false)
}

// ProbeNow forces a probe round for every tracked instance regardless
// of schedule (the one-shot path behind GET /v1/health and
// `engage health`), rescheduling each one interval out.
func (c *Checker) ProbeNow() []Observation {
	return c.sweep(true)
}

func (c *Checker) sweep(force bool) []Observation {
	now := c.Clock.Now()
	var out []Observation
	for _, id := range c.Tracked() {
		e := c.entries[id]
		if !force && now.Before(e.nextDue) {
			continue
		}
		out = append(out, c.probe(e, now))
		e.nextDue = now.Add(e.spec.Interval)
	}
	return out
}

// probe runs one round for an entry: every declared probe kind in
// order, failing the round at the first failing probe. A failing round
// is charged the spec's Timeout as observed latency (a real probe would
// have waited it out); the virtual clock itself stands still.
func (c *Checker) probe(e *entry, now time.Time) Observation {
	ob := Observation{Instance: e.target.Instance, At: now, OK: true, From: e.state}
	for _, kind := range e.spec.Probes {
		if ok, detail := c.runProbe(e.target, kind, now); !ok {
			ob.OK, ob.Probe, ob.Detail = false, kind, detail
			break
		}
	}
	e.lastAt, e.lastOK = now, ob.OK

	latency := time.Duration(0)
	if !ob.OK {
		latency = e.spec.Timeout
		e.detail = fmt.Sprintf("%s: %s", ob.Probe, ob.Detail)
	} else {
		e.detail = ""
	}
	c.Metrics.Counter("health.probes").Inc()
	c.Metrics.Histogram("health.probe.latency_ns").Observe(latency.Nanoseconds())
	if !ob.OK {
		c.Metrics.Counter("health.probe_failures").Inc()
	}
	if c.Tracer != nil {
		ev := c.Tracer.Event("health.probe").
			Str("instance", e.target.Instance).Bool("ok", ob.OK).
			Dur("latency", latency)
		if !ob.OK {
			ev.Str("probe", ob.Probe).Str("detail", ob.Detail)
		}
		ev.Emit()
	}

	c.advance(e, ob.OK)
	ob.To = e.state
	return ob
}

// advance moves an entry's state machine on one round's verdict.
func (c *Checker) advance(e *entry, ok bool) {
	if ok {
		e.fails = 0
		switch e.state {
		case Suspect:
			c.setState(e, Healthy, "probe round passed")
		case Unhealthy:
			e.succs = 1
			c.setState(e, Recovering, "probe round passed")
		case Recovering:
			e.succs++
			if e.succs >= e.spec.SuccessThreshold {
				e.succs = 0
				c.setState(e, Healthy, "success threshold met")
			}
		}
		return
	}
	e.succs = 0
	e.fails++
	switch e.state {
	case Healthy:
		c.setState(e, Suspect, e.detail)
	case Suspect:
		if e.fails >= e.spec.FailureThreshold {
			c.setState(e, Unhealthy, e.detail)
		}
	case Recovering:
		// Flap damping: any failure while recovering goes straight back
		// to Unhealthy, so an oscillating daemon stays a drift until it
		// strings SuccessThreshold clean rounds together.
		c.setState(e, Unhealthy, e.detail)
	}
}

// setState records a transition (if the state changed), emitting the
// health.transition event and moving the instance's state gauge.
func (c *Checker) setState(e *entry, to State, why string) {
	if e.state == to {
		return
	}
	from := e.state
	e.state = to
	c.Metrics.Counter("health.transitions").Inc()
	c.gauge(e)
	if c.Tracer != nil {
		c.Tracer.Event("health.transition").
			Str("instance", e.target.Instance).
			Str("from", from.String()).Str("to", to.String()).
			Str("why", why).Emit()
	}
}

func (c *Checker) gauge(e *entry) {
	c.Metrics.Gauge("health.state." + e.target.Instance).Set(int64(e.state))
}

// runProbe evaluates one probe kind against a target. Probes check what
// the binding recorded: a target with no ports passes port-open
// vacuously, one with no PID passes proc-alive, one with no manifest
// passes config-digest.
func (c *Checker) runProbe(t Target, kind string, now time.Time) (bool, string) {
	switch kind {
	case resource.ProbePortOpen:
		for _, port := range t.Ports {
			if t.Machine == nil || !t.Machine.Listening(port) {
				return false, fmt.Sprintf("port %d not listening", port)
			}
		}
		return true, ""
	case resource.ProbeProcAlive:
		if t.PID != 0 && (t.Machine == nil || !t.Machine.Running(t.PID)) {
			return false, fmt.Sprintf("pid %d not running", t.PID)
		}
		return true, ""
	case resource.ProbeConfigDigest:
		if t.ManifestPath == "" || t.Digest == "" || t.Machine == nil {
			return true, ""
		}
		content, err := t.Machine.ReadFile(t.ManifestPath)
		if err != nil {
			return false, fmt.Sprintf("manifest %s unreadable", t.ManifestPath)
		}
		if got := Digest(content); got != t.Digest {
			return false, fmt.Sprintf("manifest %s digest mismatch", t.ManifestPath)
		}
		return true, ""
	case resource.ProbeCheck:
		if c.Source != nil && !c.Source.HealthCheck(t.Instance, t.PID, now) {
			return false, "synthetic check reports sick"
		}
		return true, ""
	default:
		// Unknown kinds are rejected by typecheck; fail loudly if one
		// slips through rather than reporting false health.
		return false, fmt.Sprintf("unknown probe kind %q", kind)
	}
}

// InstanceHealth is one tracked instance's current health.
type InstanceHealth struct {
	Instance string `json:"instance"`
	Machine  string `json:"machine"`
	State    string `json:"state"`
	// ConsecutiveFails / ConsecutiveSuccesses expose the state
	// machine's counters for reports.
	ConsecutiveFails     int    `json:"consecutive_fails,omitempty"`
	ConsecutiveSuccesses int    `json:"consecutive_successes,omitempty"`
	Detail               string `json:"detail,omitempty"`

	state State
}

// HealthState returns the typed state behind the JSON string.
func (ih InstanceHealth) HealthState() State { return ih.state }

// States reports every tracked instance's health, sorted by instance.
func (c *Checker) States() []InstanceHealth {
	out := make([]InstanceHealth, 0, len(c.entries))
	for _, id := range c.Tracked() {
		out = append(out, c.instanceHealth(id, c.entries[id]))
	}
	return out
}

// Instance returns one tracked instance's health record.
func (c *Checker) Instance(instance string) (InstanceHealth, bool) {
	e, ok := c.entries[instance]
	if !ok {
		return InstanceHealth{}, false
	}
	return c.instanceHealth(instance, e), true
}

func (c *Checker) instanceHealth(id string, e *entry) InstanceHealth {
	ih := InstanceHealth{
		Instance:             id,
		State:                e.state.String(),
		ConsecutiveFails:     e.fails,
		ConsecutiveSuccesses: e.succs,
		Detail:               e.detail,
		state:                e.state,
	}
	if e.target.Machine != nil {
		ih.Machine = e.target.Machine.Name
	}
	return ih
}

// State returns one tracked instance's state (Healthy, true) when
// tracked; ok is false otherwise.
func (c *Checker) State(instance string) (State, bool) {
	e, ok := c.entries[instance]
	if !ok {
		return Healthy, false
	}
	return e.state, true
}
