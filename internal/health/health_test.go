package health

import (
	"bytes"
	"testing"
	"time"

	"engage/internal/machine"
	"engage/internal/resource"
	"engage/internal/telemetry"
)

func testSpec() *resource.HealthSpec {
	return &resource.HealthSpec{
		Probes:           []string{resource.ProbePortOpen, resource.ProbeProcAlive, resource.ProbeCheck},
		Interval:         30 * time.Second,
		Timeout:          5 * time.Second,
		FailureThreshold: 3,
		SuccessThreshold: 2,
	}
}

// world builds a machine with one running daemon on port 9000.
func world(t *testing.T) (*machine.World, *machine.Machine, *machine.Process) {
	t.Helper()
	w := machine.NewWorld()
	m, err := w.AddMachine("m1", "linux")
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.StartProcess("appd", "appd --serve", 9000)
	if err != nil {
		t.Fatal(err)
	}
	return w, m, p
}

func track(c *Checker, m *machine.Machine, pid int, spec *resource.HealthSpec) {
	c.Track(Target{Instance: "app", Machine: m, PID: pid, Ports: []int{9000}}, spec)
}

// drive advances the clock one interval and ticks, n times, returning
// the final state.
func drive(t *testing.T, w *machine.World, c *Checker, n int) State {
	t.Helper()
	for i := 0; i < n; i++ {
		w.Clock.Advance(30 * time.Second)
		c.Tick()
	}
	st, ok := c.State("app")
	if !ok {
		t.Fatal("app not tracked")
	}
	return st
}

func TestFreshInstanceProvesHealthy(t *testing.T) {
	w, m, p := world(t)
	c := NewChecker(w.Clock)
	track(c, m, p.PID, testSpec())
	if st, _ := c.State("app"); st != Suspect {
		t.Fatalf("fresh instance = %v, want suspect", st)
	}
	obs := c.Tick() // due immediately
	if len(obs) != 1 || !obs[0].OK || obs[0].To != Healthy {
		t.Fatalf("first round = %+v", obs)
	}
	// Within the interval nothing is due.
	if obs := c.Tick(); len(obs) != 0 {
		t.Errorf("off-schedule tick should be quiet: %+v", obs)
	}
	if st := drive(t, w, c, 1); st != Healthy {
		t.Errorf("state = %v", st)
	}
}

func TestDetectionWithinThresholdTimesInterval(t *testing.T) {
	w, m, p := world(t)
	c := NewChecker(w.Clock)
	spec := testSpec()
	track(c, m, p.PID, spec)
	c.Tick() // healthy

	// Kill the daemon: port-open fails from the next round on.
	if err := m.KillProcess(p.PID); err != nil {
		t.Fatal(err)
	}
	t0 := w.Clock.Now()
	bound := time.Duration(spec.FailureThreshold) * spec.Interval
	for i := 0; ; i++ {
		if st := drive(t, w, c, 1); st == Unhealthy {
			break
		}
		if w.Clock.Now().Sub(t0) > bound {
			t.Fatalf("not unhealthy after %v (bound %v)", w.Clock.Now().Sub(t0), bound)
		}
	}
	if got := w.Clock.Now().Sub(t0); got > bound {
		t.Errorf("detection latency %v exceeds bound %v", got, bound)
	}
}

func TestRecoveryNeedsSuccessThreshold(t *testing.T) {
	w, m, p := world(t)
	c := NewChecker(w.Clock)
	track(c, m, p.PID, testSpec())
	c.Tick()
	if err := m.KillProcess(p.PID); err != nil {
		t.Fatal(err)
	}
	if st := drive(t, w, c, 3); st != Unhealthy {
		t.Fatalf("state after 3 failing rounds = %v, want unhealthy", st)
	}

	// Heal the daemon in place: same PID semantics don't matter, the
	// target is re-tracked with the new PID (repair path).
	p2, err := m.StartProcess("appd", "appd --serve", 9000)
	if err != nil {
		t.Fatal(err)
	}
	track(c, m, p2.PID, testSpec()) // new PID → resets to Suspect
	if st, _ := c.State("app"); st != Suspect {
		t.Fatalf("re-tracked replaced daemon should be suspect, got %v", st)
	}
	if st := drive(t, w, c, 1); st != Healthy {
		t.Errorf("suspect + pass = %v, want healthy", st)
	}
}

// flaky fails every probe while sick is true.
type flaky struct{ sick bool }

func (f *flaky) HealthCheck(string, int, time.Time) bool { return !f.sick }

func TestFlapDamping(t *testing.T) {
	w, m, p := world(t)
	c := NewChecker(w.Clock)
	src := &flaky{}
	c.Source = src
	track(c, m, p.PID, testSpec())
	c.Tick() // healthy

	src.sick = true
	if st := drive(t, w, c, 3); st != Unhealthy {
		t.Fatalf("sick instance = %v, want unhealthy", st)
	}
	// One good round: Recovering, not Healthy.
	src.sick = false
	if st := drive(t, w, c, 1); st != Recovering {
		t.Fatalf("one good round = %v, want recovering", st)
	}
	// A failure while recovering snaps back to Unhealthy (damping).
	src.sick = true
	if st := drive(t, w, c, 1); st != Unhealthy {
		t.Fatalf("flap while recovering = %v, want unhealthy", st)
	}
	// SuccessThreshold clean rounds finally land Healthy.
	src.sick = false
	if st := drive(t, w, c, 1); st != Recovering {
		t.Fatal("first clean round should be recovering")
	}
	if st := drive(t, w, c, 1); st != Healthy {
		t.Errorf("second clean round should be healthy")
	}
}

func TestMarkSuspectReentersSchedule(t *testing.T) {
	w, m, p := world(t)
	c := NewChecker(w.Clock)
	track(c, m, p.PID, testSpec())
	c.Tick()
	if st, _ := c.State("app"); st != Healthy {
		t.Fatal("setup: should be healthy")
	}
	c.MarkSuspect("app")
	if st, _ := c.State("app"); st != Suspect {
		t.Fatalf("MarkSuspect → %v", st)
	}
	// Immediately due again without waiting out the old schedule.
	obs := c.Tick()
	if len(obs) != 1 || obs[0].To != Healthy {
		t.Errorf("post-clear probe = %+v", obs)
	}
}

func TestConfigDigestProbe(t *testing.T) {
	w, m, p := world(t)
	if err := m.WriteFile("/etc/app.conf", "port=9000\n"); err != nil {
		t.Fatal(err)
	}
	c := NewChecker(w.Clock)
	spec := testSpec()
	spec.Probes = []string{resource.ProbeConfigDigest}
	c.Track(Target{
		Instance: "app", Machine: m, PID: p.PID,
		ManifestPath: "/etc/app.conf", Digest: Digest("port=9000\n"),
	}, spec)
	if obs := c.Tick(); !obs[0].OK {
		t.Fatalf("matching digest should pass: %+v", obs)
	}
	if err := m.WriteFile("/etc/app.conf", "port=FFFF\n"); err != nil {
		t.Fatal(err)
	}
	w.Clock.Advance(30 * time.Second)
	obs := c.Tick()
	if obs[0].OK || obs[0].Probe != resource.ProbeConfigDigest {
		t.Errorf("corrupted manifest should fail config-digest: %+v", obs)
	}
}

func TestTelemetryEventsAndGauges(t *testing.T) {
	w, m, p := world(t)
	var buf bytes.Buffer
	tr := telemetry.New(&buf, w.Clock)
	reg := telemetry.NewRegistry()
	c := NewChecker(w.Clock)
	c.Tracer, c.Metrics = tr, reg
	track(c, m, p.PID, testSpec())
	c.Tick() // suspect → healthy
	if err := m.KillProcess(p.PID); err != nil {
		t.Fatal(err)
	}
	drive(t, w, c, 3) // → unhealthy

	trace, err := telemetry.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	probes := trace.Events("health.probe")
	if len(probes) != 4 {
		t.Fatalf("health.probe events = %d, want 4", len(probes))
	}
	for _, ev := range probes {
		if ev.VTime == nil {
			t.Error("probe event missing virtual stamp")
		}
	}
	trans := trace.Events("health.transition")
	if len(trans) != 3 { // →healthy, →suspect, →unhealthy
		t.Fatalf("transitions = %d, want 3", len(trans))
	}
	if trans[2].Str("to") != "unhealthy" || trans[2].Str("from") != "suspect" {
		t.Errorf("final transition = %v", trans[2].Attrs)
	}

	snap := reg.Snapshot()
	if got := snap.Gauges["health.state.app"]; got != int64(Unhealthy) {
		t.Errorf("health.state.app gauge = %d, want %d", got, int64(Unhealthy))
	}
	if snap.Counters["health.probes"] != 4 || snap.Counters["health.probe_failures"] != 3 {
		t.Errorf("probe counters = %v", snap.Counters)
	}
	if snap.Histograms["health.probe.latency_ns"].Count != 4 {
		t.Errorf("latency histogram = %+v", snap.Histograms["health.probe.latency_ns"])
	}
}

func TestRollups(t *testing.T) {
	states := []InstanceHealth{
		{Instance: "a", Machine: "m1", State: "healthy", state: Healthy},
		{Instance: "b", Machine: "m1", State: "unhealthy", state: Unhealthy},
		{Instance: "c", Machine: "m2", State: "suspect", state: Suspect},
	}
	r := RollupStack("web", states)
	if r.Summary.WorstState() != Unhealthy || r.Summary.State != "unhealthy" {
		t.Errorf("stack summary = %+v", r.Summary)
	}
	if r.Summary.Healthy != 1 || r.Summary.Unhealthy != 1 || r.Summary.Suspect != 1 {
		t.Errorf("counts = %+v", r.Summary)
	}
	if len(r.Machines) != 2 || r.Machines[0].Machine != "m1" || r.Machines[1].Machine != "m2" {
		t.Fatalf("machines = %+v", r.Machines)
	}
	if r.Machines[0].Summary.WorstState() != Unhealthy {
		t.Errorf("m1 rollup = %+v", r.Machines[0].Summary)
	}
	if r.Machines[1].Summary.WorstState() != Suspect {
		t.Errorf("m2 rollup = %+v", r.Machines[1].Summary)
	}
	if got := Summarize(nil); got.WorstState() != Healthy || got.Total() != 0 {
		t.Errorf("empty summary = %+v", got)
	}
}

func TestForget(t *testing.T) {
	w, m, p := world(t)
	c := NewChecker(w.Clock)
	track(c, m, p.PID, testSpec())
	c.Forget("app")
	if len(c.Tracked()) != 0 || len(c.States()) != 0 {
		t.Error("forget should drop the instance")
	}
	if obs := c.ProbeNow(); len(obs) != 0 {
		t.Errorf("nothing tracked, got %+v", obs)
	}
}
