// Package paas implements the platform-as-a-service front end the paper
// describes Engage powering ("the core technology behind a commercial
// platform-as-a-service company … available through a web service"):
// developers package their Django application locally, upload the
// archive, pick a deployment configuration, and the platform provisions
// a node, runs the configuration engine, deploys, and manages the app —
// including monitored status and incremental upgrades.
package paas

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"engage/internal/cloud"
	"engage/internal/config"
	"engage/internal/deploy"
	"engage/internal/library"
	"engage/internal/machine"
	"engage/internal/packager"
	"engage/internal/pkgmgr"
	"engage/internal/resource"
	"engage/internal/spec"
	"engage/internal/upgrade"
)

// Platform hosts packaged Django applications on a simulated cloud.
type Platform struct {
	mu       sync.Mutex
	registry *resource.Registry
	drivers  *deploy.DriverRegistry
	world    *machine.World
	index    *pkgmgr.Index
	cache    *pkgmgr.Cache
	provider *cloud.Provider
	apps     map[string]*AppRecord
}

// AppRecord is the platform's state for one hosted application.
type AppRecord struct {
	Archive    packager.Archive
	Config     library.DeployConfig
	Spec       *spec.Full
	Deployment *deploy.Deployment
	NodeName   string
	URL        string
}

// NewPlatform builds a platform over the bundled library and a fresh
// simulated Rackspace cloud.
func NewPlatform() (*Platform, error) {
	reg, err := library.Registry()
	if err != nil {
		return nil, err
	}
	world := machine.NewWorld()
	return &Platform{
		registry: reg,
		drivers:  library.Drivers(),
		world:    world,
		index:    library.PackageIndex(),
		cache:    pkgmgr.NewCache(),
		provider: cloud.NewRackspaceSim(world),
		apps:     make(map[string]*AppRecord),
	}, nil
}

// World exposes the platform's simulated world (tests and tooling).
func (p *Platform) World() *machine.World { return p.world }

func (p *Platform) options() deploy.Options {
	return deploy.Options{
		Registry: p.registry, Drivers: p.drivers, World: p.world,
		Index: p.index, Cache: p.cache,
		ProvisionMissing: true, OSOf: library.OSOf,
	}
}

// prefixPartial rewrites a partial specification's instance IDs with an
// application prefix so several hosted apps coexist in one world.
func prefixPartial(p *spec.Partial, prefix string) *spec.Partial {
	out := &spec.Partial{}
	for _, inst := range p.Instances {
		clone := &spec.PartialInstance{
			ID:     prefix + inst.ID,
			Key:    inst.Key,
			Config: inst.Config,
		}
		if inst.Inside != "" {
			clone.Inside = prefix + inst.Inside
		}
		out.Instances = append(out.Instances, clone)
	}
	return out
}

// DeployApp hosts an application: register its generated resource type,
// provision a node, configure, and deploy. The app name must be unique
// on the platform.
func (p *Platform) DeployApp(arch packager.Archive, cfg library.DeployConfig) (*AppRecord, error) {
	p.mu.Lock()
	defer p.mu.Unlock()

	name := arch.Manifest.Name
	if name == "" {
		return nil, fmt.Errorf("paas: archive has no application name")
	}
	if _, exists := p.apps[name]; exists {
		return nil, fmt.Errorf("paas: application %q already deployed (use Upgrade)", name)
	}
	if err := p.registerArchive(arch); err != nil {
		return nil, err
	}

	prefix := name + "-"
	partial := prefixPartial(cfg.Partial(arch.Manifest), prefix)

	// Provision the app's node from the cloud and merge host details.
	nodeName := prefix + "server"
	if _, ok := p.world.Machine(nodeName); !ok {
		if _, err := p.provider.Provision(nodeName, library.OSName(cfg.OS)); err != nil {
			return nil, fmt.Errorf("paas: %w", err)
		}
	}
	if srv, ok := partial.Find(nodeName); ok {
		m, _ := p.world.Machine(nodeName)
		srv.Set("hostname", resource.Str(m.Hostname))
		srv.Set("ip", resource.Str(m.IP))
	}

	full, err := config.New(p.registry).Configure(partial)
	if err != nil {
		return nil, fmt.Errorf("paas: configuring %q: %w", name, err)
	}
	dep, err := deploy.New(full, p.options())
	if err != nil {
		return nil, fmt.Errorf("paas: %w", err)
	}
	if err := dep.Deploy(); err != nil {
		return nil, fmt.Errorf("paas: deploying %q: %w", name, err)
	}

	rec := &AppRecord{
		Archive: arch, Config: cfg, Spec: full, Deployment: dep, NodeName: nodeName,
	}
	if appInst, ok := full.Find(prefix + "app"); ok {
		if url, ok := appInst.Output["url"]; ok {
			rec.URL = url.AsString()
		}
	}
	p.apps[name] = rec
	return rec, nil
}

// registerArchive adds the app's generated type/driver, tolerating
// re-registration of the identical key (upgrades bring new versions).
func (p *Platform) registerArchive(arch packager.Archive) error {
	key := library.AppKey(arch.Manifest)
	if _, exists := p.registry.Lookup(key); exists {
		// Type already known (e.g. same version re-upload): refresh the
		// driver so new archive contents deploy.
		p.drivers.RegisterKey(key, library.AppDriver(arch))
		return nil
	}
	return library.RegisterApp(p.registry, p.drivers, arch)
}

// App returns a hosted application's record.
func (p *Platform) App(name string) (*AppRecord, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.apps[name]
	return rec, ok
}

// Apps lists hosted application names, sorted.
func (p *Platform) Apps() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.apps))
	for n := range p.apps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Status reports per-instance driver states for a hosted app.
func (p *Platform) Status(name string) (map[string]string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.apps[name]
	if !ok {
		return nil, fmt.Errorf("paas: no application %q", name)
	}
	out := make(map[string]string)
	for id, st := range rec.Deployment.Status() {
		out[strings.TrimPrefix(id, name+"-")] = string(st)
	}
	return out, nil
}

// Upgrade moves a hosted application to a new archive using the
// incremental strategy; on failure the previous version keeps running
// (rollback) and the error is reported.
func (p *Platform) Upgrade(name string, arch packager.Archive) (*upgrade.Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.apps[name]
	if !ok {
		return nil, fmt.Errorf("paas: no application %q", name)
	}
	if arch.Manifest.Name != name {
		return nil, fmt.Errorf("paas: archive is for %q, not %q", arch.Manifest.Name, name)
	}
	if err := p.registerArchive(arch); err != nil {
		return nil, err
	}

	prefix := name + "-"
	partial := prefixPartial(rec.Config.Partial(arch.Manifest), prefix)
	if srv, ok := partial.Find(prefix + "server"); ok {
		m, _ := p.world.Machine(rec.NodeName)
		srv.Set("hostname", resource.Str(m.Hostname))
		srv.Set("ip", resource.Str(m.IP))
	}
	newFull, err := config.New(p.registry).Configure(partial)
	if err != nil {
		return nil, fmt.Errorf("paas: configuring upgrade of %q: %w", name, err)
	}

	u := &upgrade.Upgrader{Options: p.options()}
	newDep, res, err := u.UpgradeIncremental(rec.Deployment, rec.Spec, newFull)
	if err != nil {
		return res, fmt.Errorf("paas: upgrading %q: %w", name, err)
	}
	if !res.RolledBack {
		rec.Archive = arch
		rec.Spec = newFull
	}
	rec.Deployment = newDep
	return res, nil
}

// Remove shuts an application down, uninstalls it, and terminates its
// node.
func (p *Platform) Remove(name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.apps[name]
	if !ok {
		return fmt.Errorf("paas: no application %q", name)
	}
	if err := rec.Deployment.Uninstall(); err != nil {
		return fmt.Errorf("paas: removing %q: %w", name, err)
	}
	if err := p.provider.Terminate(rec.NodeName); err != nil {
		return fmt.Errorf("paas: terminating node for %q: %w", name, err)
	}
	delete(p.apps, name)
	return nil
}
