package paas

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"engage/internal/library"
	"engage/internal/packager"
	"engage/internal/resource"
)

// Handler exposes the platform over HTTP:
//
//	GET    /healthz                    liveness
//	GET    /apps                       list hosted applications
//	POST   /apps?os=…&web=…&db=…&…     deploy an uploaded archive
//	GET    /apps/{name}                application record
//	GET    /apps/{name}/status         per-instance driver states
//	POST   /apps/{name}/upgrade        upgrade to an uploaded archive
//	DELETE /apps/{name}                remove the application
//
// Upload bodies are packager.Archive JSON (what `Archive.Bytes`
// emits). Configuration query parameters: os, web, db select resource
// keys; celery, redis, memcached, monit are booleans ("1"/"true").
func (p *Platform) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/apps", p.handleApps)
	mux.HandleFunc("/apps/", p.handleApp)
	return mux
}

type appSummary struct {
	Name    string `json:"name"`
	Version string `json:"version"`
	URL     string `json:"url,omitempty"`
	Node    string `json:"node"`
	Config  string `json:"config"`
}

func (p *Platform) handleApps(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		var out []appSummary
		for _, name := range p.Apps() {
			rec, _ := p.App(name)
			out = append(out, summarize(name, rec))
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		arch, ok := readArchive(w, r)
		if !ok {
			return
		}
		cfg, err := configFromQuery(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		rec, err := p.DeployApp(arch, cfg)
		if err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusCreated, summarize(arch.Manifest.Name, rec))
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

func (p *Platform) handleApp(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/apps/")
	parts := strings.SplitN(rest, "/", 2)
	name := parts[0]
	action := ""
	if len(parts) == 2 {
		action = parts[1]
	}
	if name == "" {
		writeError(w, http.StatusNotFound, fmt.Errorf("missing application name"))
		return
	}

	switch {
	case r.Method == http.MethodGet && action == "":
		rec, ok := p.App(name)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no application %q", name))
			return
		}
		writeJSON(w, http.StatusOK, summarize(name, rec))
	case r.Method == http.MethodGet && action == "status":
		st, err := p.Status(name)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case r.Method == http.MethodPost && action == "upgrade":
		arch, ok := readArchive(w, r)
		if !ok {
			return
		}
		res, err := p.Upgrade(name, arch)
		if err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		payload := map[string]any{
			"rolled_back": res.RolledBack,
			"added":       res.Diff.Added,
			"removed":     res.Diff.Removed,
			"changed":     res.Diff.Changed,
		}
		if res.Cause != nil {
			payload["cause"] = res.Cause.Error()
		}
		writeJSON(w, http.StatusOK, payload)
	case r.Method == http.MethodDelete && action == "":
		if err := p.Remove(name); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"removed": name})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("unsupported %s %s", r.Method, r.URL.Path))
	}
}

func summarize(name string, rec *AppRecord) appSummary {
	return appSummary{
		Name:    name,
		Version: rec.Archive.Manifest.Version,
		URL:     rec.URL,
		Node:    rec.NodeName,
		Config:  rec.Config.String(),
	}
}

func readArchive(w http.ResponseWriter, r *http.Request) (packager.Archive, bool) {
	var raw json.RawMessage
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	if err := dec.Decode(&raw); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad archive payload: %v", err))
		return packager.Archive{}, false
	}
	arch, err := packager.ReadArchive(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return packager.Archive{}, false
	}
	return arch, true
}

// configFromQuery builds a DeployConfig from query parameters with the
// platform's defaults (Ubuntu 12.04 / Gunicorn / MySQL).
func configFromQuery(r *http.Request) (library.DeployConfig, error) {
	q := r.URL.Query()
	cfg := library.DeployConfig{
		OS:        resource.MakeKey("Ubuntu", "12.04"),
		WebServer: resource.MakeKey("Gunicorn", "0.13"),
		Database:  resource.MakeKey("MySQL", "5.1"),
	}
	if v := q.Get("os"); v != "" {
		cfg.OS = resource.ParseKey(v)
	}
	if v := q.Get("web"); v != "" {
		cfg.WebServer = resource.ParseKey(v)
	}
	if v := q.Get("db"); v != "" {
		cfg.Database = resource.ParseKey(v)
	}
	boolParam := func(name string) bool {
		v := q.Get(name)
		return v == "1" || v == "true"
	}
	cfg.Celery = boolParam("celery")
	cfg.Redis = boolParam("redis")
	cfg.Memcached = boolParam("memcached")
	cfg.Monit = boolParam("monit")
	return cfg, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
