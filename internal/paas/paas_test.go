package paas

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"engage/internal/library"
	"engage/internal/packager"
	"engage/internal/resource"
)

func mustArchive(t *testing.T, name, version string) packager.Archive {
	t.Helper()
	app := packager.App{
		Name:    name,
		Version: version,
		Files: map[string]string{
			"manage.py": "#!/usr/bin/env python",
			"settings.py": `
DATABASES = {"default": {"ENGINE": "django.db.backends.mysql", "NAME": "` + name + `"}}
INSTALLED_APPS = ["django.contrib.auth", "` + name + `"]
`,
		},
	}
	arch, err := packager.Package(app)
	if err != nil {
		t.Fatal(err)
	}
	return arch
}

func defaultConfig() library.DeployConfig {
	return library.DeployConfig{
		OS:        resource.MakeKey("Ubuntu", "12.04"),
		WebServer: resource.MakeKey("Gunicorn", "0.13"),
		Database:  resource.MakeKey("MySQL", "5.1"),
	}
}

func TestPlatformDeployApp(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.DeployApp(mustArchive(t, "guestbook", "1.0"), defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rec.URL == "" || !strings.Contains(rec.URL, "guestbook") {
		t.Errorf("url = %q", rec.URL)
	}
	if !rec.Deployment.Deployed() {
		t.Error("app should be deployed")
	}
	// The node was provisioned on the simulated cloud.
	m, ok := p.World().Machine("guestbook-server")
	if !ok {
		t.Fatal("node missing")
	}
	if !m.Listening(8000) || !m.Listening(3306) {
		t.Error("gunicorn and mysql should be listening")
	}
	// Status by logical (unprefixed) instance name.
	st, err := p.Status("guestbook")
	if err != nil {
		t.Fatal(err)
	}
	if st["app"] != "active" || st["webserver"] != "active" {
		t.Errorf("status = %v", st)
	}
}

func TestPlatformTwoAppsCoexist(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DeployApp(mustArchive(t, "alpha", "1.0"), defaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DeployApp(mustArchive(t, "beta", "1.0"), defaultConfig()); err != nil {
		t.Fatal(err)
	}
	apps := p.Apps()
	if len(apps) != 2 || apps[0] != "alpha" || apps[1] != "beta" {
		t.Errorf("Apps = %v", apps)
	}
	// Each app has its own node; no port collisions.
	for _, name := range apps {
		m, ok := p.World().Machine(name + "-server")
		if !ok || !m.Listening(8000) {
			t.Errorf("%s node unhealthy", name)
		}
	}
}

func TestPlatformDuplicateRejected(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DeployApp(mustArchive(t, "dup", "1.0"), defaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DeployApp(mustArchive(t, "dup", "1.0"), defaultConfig()); err == nil {
		t.Error("duplicate deploy should fail")
	}
}

func TestPlatformUpgradeAndRemove(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DeployApp(mustArchive(t, "shop", "1.0"), defaultConfig()); err != nil {
		t.Fatal(err)
	}
	res, err := p.Upgrade("shop", mustArchive(t, "shop", "2.0"))
	if err != nil {
		t.Fatal(err)
	}
	if res.RolledBack {
		t.Fatalf("unexpected rollback: %v", res.Cause)
	}
	rec, _ := p.App("shop")
	if rec.Archive.Manifest.Version != "2.0" {
		t.Errorf("version after upgrade = %s", rec.Archive.Manifest.Version)
	}
	if _, err := p.Upgrade("ghost", mustArchive(t, "ghost", "1.0")); err == nil {
		t.Error("upgrading unknown app should fail")
	}
	if _, err := p.Upgrade("shop", mustArchive(t, "other", "1.0")); err == nil {
		t.Error("mismatched archive name should fail")
	}

	if err := p.Remove("shop"); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.World().Machine("shop-server"); ok {
		t.Error("node should be terminated")
	}
	if err := p.Remove("shop"); err == nil {
		t.Error("double remove should fail")
	}
}

// --- HTTP API ---

func postArchive(t *testing.T, srv *httptest.Server, path string, arch packager.Archive) *http.Response {
	t.Helper()
	body, err := arch.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPLifecycle(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// Health.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Deploy via POST /apps with config query params.
	resp = postArchive(t, srv, "/apps?db="+url.QueryEscape("SQLite 3.7")+"&monit=1",
		mustArchive(t, "blog", "1.0"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %v", resp.Status)
	}
	var created appSummary
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if created.Name != "blog" || !strings.Contains(created.Config, "sqlite") || !strings.Contains(created.Config, "monit") {
		t.Errorf("created = %+v", created)
	}

	// List.
	resp, err = http.Get(srv.URL + "/apps")
	if err != nil {
		t.Fatal(err)
	}
	var list []appSummary
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Name != "blog" {
		t.Errorf("list = %+v", list)
	}

	// Record and status.
	resp, err = http.Get(srv.URL + "/apps/blog")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("get app: %v %v", resp.Status, err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/apps/blog/status")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st["app"] != "active" || st["monit"] != "active" {
		t.Errorf("status = %v", st)
	}

	// Upgrade.
	resp = postArchive(t, srv, "/apps/blog/upgrade", mustArchive(t, "blog", "1.1"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upgrade status = %v", resp.Status)
	}
	var up map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if up["rolled_back"] != false {
		t.Errorf("upgrade = %v", up)
	}

	// Delete.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/apps/blog", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	resp, _ = http.Get(srv.URL + "/apps/blog")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("after delete: %v", resp.Status)
	}
	resp.Body.Close()
}

func TestHTTPErrors(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// Bad archive payload.
	resp, err := http.Post(srv.URL+"/apps", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad payload: %v", resp.Status)
	}
	resp.Body.Close()

	// Archive without a name.
	resp, err = http.Post(srv.URL+"/apps", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("nameless archive: %v", resp.Status)
	}
	resp.Body.Close()

	// Unknown app status.
	resp, _ = http.Get(srv.URL + "/apps/ghost/status")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ghost status: %v", resp.Status)
	}
	resp.Body.Close()

	// Method not allowed.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/apps", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /apps: %v", resp.Status)
	}
	resp.Body.Close()
}

// TestPlatformHostsAllTableOneApps is the commercial-scale scenario:
// every Table 1 application hosted simultaneously, each on its own
// cloud node, with monitoring intact.
func TestPlatformHostsAllTableOneApps(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	apps := library.TableOneApps()
	for _, a := range apps {
		arch, err := packager.Package(a)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		cfg := defaultConfig()
		if arch.Manifest.DatabaseEngine == "sqlite" {
			cfg.Database = resource.MakeKey("SQLite", "3.7")
		}
		cfg.Celery = arch.Manifest.UsesCelery
		cfg.Redis = arch.Manifest.UsesRedis
		cfg.Memcached = arch.Manifest.UsesMemcached
		cfg.Monit = true
		if _, err := p.DeployApp(arch, cfg); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}
	if got := len(p.Apps()); got != len(apps) {
		t.Fatalf("hosted %d apps, want %d", got, len(apps))
	}
	for _, a := range apps {
		st, err := p.Status(a.Name)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for inst, state := range st {
			if state != "active" {
				t.Errorf("%s/%s state = %s", a.Name, inst, state)
			}
		}
		m, ok := p.World().Machine(a.Name + "-server")
		if !ok || !m.Listening(8000) {
			t.Errorf("%s node unhealthy", a.Name)
		}
	}
	// Eight nodes provisioned, one per app.
	if got := len(p.World().Machines()); got != len(apps) {
		t.Errorf("machines = %d, want %d", got, len(apps))
	}
}
