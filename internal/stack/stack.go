// Package stack adds the stateful layer the paper stops short of: a
// named, versioned desired-state record — the resolved full
// specification, the configured model, and the instance→machine/process
// bindings observed at apply time — that can be re-applied idempotently
// and, through the Reconciler (reconcile.go), continuously enforced
// against the live world. The record is JSON round-trippable, following
// the influxdb pkger "stacks" model of stateful, idempotently
// re-appliable desired state; the reconciliation loop follows the
// constraint-based autonomic management framework of
// Dearle/Kirby/McCarthy (arXiv 1006.4572), in which the configuration
// constraints themselves drive repair.
package stack

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"engage/internal/config"
	"engage/internal/deploy"
	"engage/internal/health"
	"engage/internal/monitor"
	"engage/internal/spec"
	"engage/internal/upgrade"
)

// Binding records where one desired instance landed in the live world:
// the hosting machine, the daemon process (if the driver spawned one),
// the TCP ports it must keep serving, and the config manifest written
// to the machine. Bindings are the reconciler's comparison baseline —
// drift is any divergence between them and the observed world.
type Binding struct {
	Instance string `json:"instance"`
	Machine  string `json:"machine"`
	// ProcName / Command / PID / Ports describe the recorded daemon;
	// all empty for passive (library/machine) resources.
	ProcName string `json:"proc,omitempty"`
	Command  string `json:"command,omitempty"`
	PID      int    `json:"pid,omitempty"`
	Ports    []int  `json:"ports,omitempty"`
	// ManifestPath is the per-instance config manifest on Machine;
	// Manifest is its expected content (the instance's resolved
	// configuration, canonically rendered).
	ManifestPath string `json:"manifest_path"`
	Manifest     string `json:"manifest"`
}

// Stack is the named, versioned desired-state record. Version counts
// the applies that changed the desired specification; re-applying an
// identical specification is a no-op and does not bump it.
type Stack struct {
	Name     string             `json:"name"`
	Version  int                `json:"version"`
	Desired  *spec.Full         `json:"desired"`
	Bindings map[string]Binding `json:"bindings"`
}

// WriteJSON renders the record as indented JSON.
func (s *Stack) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadStack parses a record written by WriteJSON.
func ReadStack(r io.Reader) (*Stack, error) {
	var s Stack
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("stack: %v", err)
	}
	if s.Name == "" {
		return nil, fmt.Errorf("stack: record has no name")
	}
	if s.Desired == nil {
		return nil, fmt.Errorf("stack %q: record has no desired specification", s.Name)
	}
	if s.Bindings == nil {
		s.Bindings = map[string]Binding{}
	}
	return &s, nil
}

// ManifestPath is where an instance's config manifest lives on its
// machine.
func ManifestPath(stackName, instanceID string) string {
	return fmt.Sprintf("/etc/engage/stacks/%s/%s.conf", stackName, instanceID)
}

// ManifestFor renders an instance's resolved configuration as the
// canonical manifest content: key, machine, and sorted config ports.
// Exported so independent verification (internal/certify) can re-render
// the expected manifest and compare it against a recorded binding.
func ManifestFor(inst *spec.Instance) string {
	var b strings.Builder
	fmt.Fprintf(&b, "key = %s\n", inst.Key)
	fmt.Fprintf(&b, "machine = %s\n", inst.Machine)
	names := make([]string, 0, len(inst.Config))
	for k := range inst.Config {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "config %s = %s\n", k, inst.Config[k])
	}
	return b.String()
}

// Controller applies stacks onto one world. Options carries the
// substrate, driver registry, failure policies, and telemetry, exactly
// as for a plain deployment.
type Controller struct {
	Options deploy.Options
	// Engine, when nil, is built from Options (registry + telemetry).
	Engine *config.Engine
}

func (c *Controller) engine() *config.Engine {
	if c.Engine != nil {
		return c.Engine
	}
	e := config.New(c.Options.Registry)
	e.Tracer = c.Options.Tracer
	e.Metrics = c.Options.Metrics
	c.Engine = e
	return e
}

// Applied is a stack applied to a live world: the record, the running
// deployment, the warm configuration session (for minimal-delta
// replans), and the monitor over the stack's daemons.
type Applied struct {
	Stack   *Stack
	Dep     *deploy.Deployment
	Session *config.Session
	Monitor *monitor.Monitor
	// Health schedules the probes declared by the stack's resource types
	// (RDL health blocks) over the recorded bindings; it is ticked by the
	// monitor's Check sweep and read by the reconciler's detect phase.
	// Set Health.Source to a fault plan to answer synthetic "check"
	// probes.
	Health *health.Checker

	ctl    *Controller
	rounds int
}

// Apply configures and deploys a partial specification as a named
// stack: the desired state is resolved on a retained warm session, the
// deployment driven to active, and the record's bindings (daemon PIDs,
// ports, config manifests) written down and onto the machines.
func (c *Controller) Apply(name string, partial *spec.Partial) (*Applied, error) {
	full, sess, err := c.engine().ConfigureSession(partial)
	if err != nil {
		return nil, err
	}
	dep, err := deploy.New(full, c.Options)
	if err != nil {
		return nil, err
	}
	if err := dep.Deploy(); err != nil {
		return nil, err
	}
	a := &Applied{
		Stack:   &Stack{Name: name, Version: 1, Desired: full, Bindings: map[string]Binding{}},
		Dep:     dep,
		Session: sess,
		ctl:     c,
	}
	a.Health = health.NewChecker(c.Options.World.Clock)
	a.Health.Tracer = c.Options.Tracer
	a.Health.Metrics = c.Options.Metrics
	a.Monitor = monitor.New(dep)
	a.Monitor.Tracer = c.Options.Tracer
	a.Monitor.Metrics = c.Options.Metrics
	a.Monitor.Health = a.Health
	a.Monitor.AutoRegister()
	if err := a.RecordBindings(); err != nil {
		return nil, err
	}
	return a, nil
}

// Reapply applies a (possibly changed) partial specification to an
// already-applied stack, idempotently: an identical desired state
// touches nothing and keeps the version; a changed one goes through the
// upgrade framework's incremental path — only the affected subgraph is
// swapped, everything else keeps running — and bumps the version. On
// upgrade failure the world is restored from backup (the upgrade
// framework's completes-or-rolls-back contract) and the old record
// kept.
func (a *Applied) Reapply(partial *spec.Partial) error {
	c := a.ctl
	full, sess, err := c.engine().ConfigureSession(partial)
	if err != nil {
		return err
	}
	plan := upgrade.PlanIncremental(a.Stack.Desired, full)
	changed := len(plan.AffectedOld)+len(plan.AffectedNew) > 0
	u := &upgrade.Upgrader{Options: c.Options}
	newDep, res, err := u.UpgradeIncremental(a.Dep, a.Stack.Desired, full)
	if err != nil {
		return err
	}
	if res.RolledBack {
		a.Dep = newDep
		return fmt.Errorf("stack %q: apply rolled back: %v", a.Stack.Name, res.Cause)
	}
	a.Dep = newDep
	a.Session = sess
	a.Stack.Desired = full
	if changed {
		a.Stack.Version++
	}
	a.Monitor = monitor.New(newDep)
	a.Monitor.Tracer = c.Options.Tracer
	a.Monitor.Metrics = c.Options.Metrics
	if a.Health == nil {
		a.Health = health.NewChecker(c.Options.World.Clock)
		a.Health.Tracer = c.Options.Tracer
		a.Health.Metrics = c.Options.Metrics
	}
	a.Monitor.Health = a.Health
	a.Monitor.AutoRegister()
	return a.RecordBindings()
}

// RecordBindings re-observes the live world and rewrites the record's
// bindings and the per-instance config manifests. Called after apply
// and after every successful repair, so the record always names the
// current daemon PIDs.
func (a *Applied) RecordBindings() error { return a.recordBindings(nil) }

// recordBindings records bindings for the instances in only (nil =
// all). Repair passes its cone, so instances outside it see no write —
// not even a no-op rewrite of an identical manifest. Each recorded
// binding is (re-)tracked with the health checker: a replaced daemon's
// new PID resets its health to Suspect, so repairs must re-prove health
// before the instance reads Healthy again.
func (a *Applied) recordBindings(only map[string]bool) error {
	desired := make(map[string]bool, len(a.Stack.Desired.Instances))
	for _, inst := range a.Stack.Desired.Instances {
		desired[inst.ID] = true
		if only != nil && !only[inst.ID] {
			continue
		}
		b, err := a.observeBinding(inst)
		if err != nil {
			return err
		}
		if err := b.writeManifest(a); err != nil {
			return err
		}
		a.Stack.Bindings[inst.ID] = b
		a.trackHealth(inst, b)
	}
	if only == nil && a.Health != nil {
		// A full re-record (apply / reapply) prunes probe schedules of
		// instances no longer in the desired specification.
		for _, id := range a.Health.Tracked() {
			if !desired[id] {
				a.Health.Forget(id)
			}
		}
	}
	return nil
}

// trackHealth registers one binding with the probe scheduler, when its
// resource type declares a health block.
func (a *Applied) trackHealth(inst *spec.Instance, b Binding) {
	if a.Health == nil {
		return
	}
	t, ok := a.ctl.Options.Registry.Lookup(inst.Key)
	if !ok || t.Health == nil {
		return
	}
	m, _ := a.ctl.Options.World.Machine(b.Machine)
	a.Health.Track(health.Target{
		Instance:     inst.ID,
		Machine:      m,
		PID:          b.PID,
		Ports:        append([]int(nil), b.Ports...),
		ManifestPath: b.ManifestPath,
		Digest:       health.Digest(b.Manifest),
	}, t.Health)
}

// HealthRollup aggregates the stack's current probe states worst-of
// into the stack rollup (instance → machine → stack).
func (a *Applied) HealthRollup() health.StackRollup {
	if a.Health == nil {
		return health.RollupStack(a.Stack.Name, nil)
	}
	return health.RollupStack(a.Stack.Name, a.Health.States())
}

// observeBinding reads one instance's live placement.
func (a *Applied) observeBinding(inst *spec.Instance) (Binding, error) {
	drv, ok := a.Dep.Driver(inst.ID)
	if !ok {
		return Binding{}, fmt.Errorf("stack %q: no driver for instance %q", a.Stack.Name, inst.ID)
	}
	b := Binding{
		Instance:     inst.ID,
		Machine:      drv.Ctx.Machine.Name,
		ManifestPath: ManifestPath(a.Stack.Name, inst.ID),
		Manifest:     ManifestFor(inst),
	}
	if pid, ok := drv.Ctx.PID("daemon"); ok {
		b.PID = pid
		for _, p := range drv.Ctx.Machine.Processes() {
			if p.PID == pid {
				b.ProcName = p.Name
				b.Command = p.Command
				b.Ports = append([]int(nil), p.Ports...)
				break
			}
		}
	}
	return b, nil
}

// writeManifest writes the binding's manifest to its machine.
func (b Binding) writeManifest(a *Applied) error {
	m, ok := a.ctl.Options.World.Machine(b.Machine)
	if !ok {
		return fmt.Errorf("stack %q: instance %q: machine %q not in world", a.Stack.Name, b.Instance, b.Machine)
	}
	return m.WriteFile(b.ManifestPath, b.Manifest)
}

// InstanceIDs returns the desired instance IDs, sorted.
func (s *Stack) InstanceIDs() []string {
	ids := make([]string, 0, len(s.Desired.Instances))
	for _, inst := range s.Desired.Instances {
		ids = append(ids, inst.ID)
	}
	sort.Strings(ids)
	return ids
}
