package stack

// This file is the reconciliation loop: each round observes the live
// world against the stack record (detect), replans a minimal delta on
// the warm incremental SAT session — healthy instances pinned as
// assumptions, only the damaged cone re-searched (plan) — and drives
// the damaged instances back to the desired state under a world
// snapshot, so every round completes or rolls back (repair). Round
// structure and verdicts are traced as reconcile.round /
// reconcile.detect / reconcile.plan / reconcile.repair spans with one
// "reconcile.drift" event per finding on the virtual timeline.

import (
	"fmt"
	"sort"

	"engage/internal/deploy"
	"engage/internal/driver"
	"engage/internal/fault"
	"engage/internal/health"
	"engage/internal/sat"
	"engage/internal/spec"
	"engage/internal/telemetry"
)

// Drift is one detected divergence between the stack record and the
// observed world.
type Drift struct {
	Instance string
	// Kind is "process" (recorded daemon dead), "port" (recorded port
	// not served), "config" (manifest diverged), "degraded" (monitor
	// gave up restarting — escalate to replacement), "health" (probes
	// report the instance Unhealthy even though it may still be running
	// — escalate to replacement), or "state" (driver not active).
	Kind   string
	Detail string
}

func (d Drift) String() string {
	return fmt.Sprintf("%s: %s drift (%s)", d.Instance, d.Kind, d.Detail)
}

// RoundReport is what one reconcile round found and did.
type RoundReport struct {
	Round  int
	Drifts []Drift
	// Damaged are the drifting instances; Cone adds the transitive
	// dependents of instances needing replacement — the only set the
	// repair may touch.
	Damaged []string
	Cone    []string
	// Pinned counts the healthy instances assumed true in the replan;
	// Solve is the warm re-solve's effort delta.
	Pinned      int
	SolveStatus string
	Solve       sat.Stats
	// Repaired / RolledBack report the repair outcome; Err is the
	// failure that forced the rollback.
	Repaired   bool
	RolledBack bool
	Err        error
}

// Converged reports the round found no drift.
func (r *RoundReport) Converged() bool { return len(r.Drifts) == 0 }

// Verify runs drift detection only — no telemetry, no repair — and
// returns what it found. An empty result is the stack invariant: every
// desired instance live, bindings matching the record.
func (a *Applied) Verify() []Drift {
	drifts, _ := a.detect(nil)
	return drifts
}

// Reconcile runs one detect → plan → repair round and reports it.
func (a *Applied) Reconcile() *RoundReport {
	a.rounds++
	rep := &RoundReport{Round: a.rounds}
	tr := a.ctl.Options.Tracer
	metrics := a.ctl.Options.Metrics
	metrics.Counter("reconcile.rounds").Inc()
	root := tr.Span("reconcile.round").
		Str("stack", a.Stack.Name).Int("round", int64(a.rounds))
	defer func() {
		root.Int("drifts", int64(len(rep.Drifts))).
			Int("delta", int64(len(rep.Cone))).
			Bool("converged", rep.Converged()).
			Bool("repaired", rep.Repaired).
			Bool("rolled_back", rep.RolledBack)
		if rep.Err != nil {
			root.Str("error", rep.Err.Error())
		}
		root.End()
	}()

	sp := root.Child("reconcile.detect")
	drifts, replace := a.detect(sp)
	sp.Int("drifts", int64(len(drifts))).Int("replace", int64(len(replace))).End()
	rep.Drifts = drifts
	metrics.Counter("reconcile.drifts").Add(int64(len(drifts)))
	if rep.Converged() {
		return rep
	}

	// Plan: pin every instance outside the damaged cone and re-solve on
	// the warm session. The Sat answer proves the healthy fleet still
	// extends to a full configuration — the repair below only has to
	// re-establish the desired state inside the cone.
	sp = root.Child("reconcile.plan")
	rep.Damaged = damagedIDs(drifts)
	rep.Cone = union(rep.Damaged, downstreamClosure(a.Stack.Desired, replace))
	healthy := subtract(a.Stack.InstanceIDs(), rep.Cone)
	rep.Pinned = len(healthy)
	res, err := a.Session.SolvePinned(healthy)
	rep.SolveStatus = res.Status.String()
	rep.Solve = res.Stats
	sp.Int("pinned", int64(rep.Pinned)).Int("cone", int64(len(rep.Cone))).
		Str("status", rep.SolveStatus).
		Int("decisions", res.Stats.Decisions).
		Int("propagations", res.Stats.Propagations).
		Int("conflicts", res.Stats.Conflicts)
	if err == nil && res.Status != sat.Sat {
		err = fmt.Errorf("stack %q: replan with %d pins came back %s", a.Stack.Name, rep.Pinned, res.Status)
	}
	if err != nil {
		sp.Str("error", err.Error()).End()
		rep.Err = err
		return rep
	}
	sp.End()

	// Repair under a world snapshot: any failure restores machines and
	// driver states, leaving the round without effect.
	sp = root.Child("reconcile.repair")
	snap := deploy.SnapshotWorld(a.ctl.Options.World)
	states := a.Dep.Status()
	err = a.repair(drifts, replace, rep.Cone)
	if err != nil {
		if rerr := snap.Restore(a.ctl.Options.World); rerr != nil {
			err = fmt.Errorf("%v (rollback: %v)", err, rerr)
		}
		for id, st := range states {
			if drv, ok := a.Dep.Driver(id); ok {
				drv.SetState(st)
			}
		}
		rep.Err = err
		rep.RolledBack = true
		metrics.Counter("reconcile.rollbacks").Inc()
		sp.Bool("ok", false).Str("error", err.Error()).End()
		return rep
	}
	rep.Repaired = true
	metrics.Counter("reconcile.repairs").Inc()
	sp.Bool("ok", true).End()
	return rep
}

// ReconcileUntilConverged runs rounds until one finds no drift, up to
// max; it returns the round reports and whether convergence was
// reached.
func (a *Applied) ReconcileUntilConverged(max int) ([]*RoundReport, bool) {
	var reps []*RoundReport
	for i := 0; i < max; i++ {
		rep := a.Reconcile()
		reps = append(reps, rep)
		if rep.Converged() {
			return reps, true
		}
	}
	return reps, false
}

// detect compares the record's bindings against the observed world and
// the monitor's restart bookkeeping. A monitor-restarted daemon that is
// healthy again only refreshes the binding (transient restarts are left
// alone); a crash-looping (degraded) instance escalates to replacement.
// It returns the drifts and the set of instances needing replacement.
func (a *Applied) detect(sp *telemetry.Span) ([]Drift, map[string]bool) {
	var drifts []Drift
	replace := make(map[string]bool)
	procState := a.Monitor.Snapshot()
	add := func(d Drift) {
		drifts = append(drifts, d)
		sp.Event("reconcile.drift").
			Str("instance", d.Instance).Str("kind", d.Kind).Str("detail", d.Detail).
			Emit()
	}
	for _, inst := range a.Stack.Desired.Instances {
		b := a.Stack.Bindings[inst.ID]
		drv, ok := a.Dep.Driver(inst.ID)
		if !ok {
			add(Drift{Instance: inst.ID, Kind: "state", Detail: "no driver"})
			replace[inst.ID] = true
			continue
		}
		m := drv.Ctx.Machine
		if ps, watched := procState[inst.ID]; watched && ps.Degraded {
			add(Drift{Instance: inst.ID, Kind: "degraded",
				Detail: fmt.Sprintf("crash-looping: %d restarts in window", ps.RestartsInWindow)})
			replace[inst.ID] = true
			continue
		}
		if a.Health != nil {
			// An Unhealthy verdict (FailureThreshold consecutive failing
			// probe rounds) is drift even when the daemon still runs —
			// the running-but-sick case that process/port checks miss.
			// Suspect and Recovering are not drift: the state machine is
			// still making up its mind.
			if ih, tracked := a.Health.Instance(inst.ID); tracked && ih.HealthState() == health.Unhealthy {
				detail := ih.Detail
				if detail == "" {
					detail = "probes report unhealthy"
				}
				add(Drift{Instance: inst.ID, Kind: "health", Detail: detail})
				replace[inst.ID] = true
				continue
			}
		}
		if drv.State() != driver.Active {
			add(Drift{Instance: inst.ID, Kind: "state",
				Detail: fmt.Sprintf("driver %s, want active", drv.State())})
			replace[inst.ID] = true
			continue
		}
		if b.PID != 0 {
			if cur, ok := drv.Ctx.PID("daemon"); ok && cur != b.PID && m.Running(cur) {
				// The monitor already healed it: adopt the new process
				// as the recorded binding rather than repairing again.
				if nb, err := a.observeBinding(inst); err == nil {
					nb.Manifest = b.Manifest // keep the desired manifest
					a.Stack.Bindings[inst.ID] = nb
					b = nb
				}
			}
			if !m.Running(b.PID) {
				add(Drift{Instance: inst.ID, Kind: "process",
					Detail: fmt.Sprintf("recorded pid %d not running on %s", b.PID, b.Machine)})
			} else {
				for _, port := range b.Ports {
					if !m.Listening(port) {
						add(Drift{Instance: inst.ID, Kind: "port",
							Detail: fmt.Sprintf("port %d not served on %s", port, b.Machine)})
						break
					}
				}
			}
		}
		if content, err := m.ReadFile(b.ManifestPath); err != nil || content != b.Manifest {
			detail := "manifest content diverged"
			if err != nil {
				detail = "manifest missing"
			}
			add(Drift{Instance: inst.ID, Kind: "config", Detail: detail})
		}
	}
	return drifts, replace
}

// repair drives the damaged instances back to the desired state.
// Replacements (degraded / wrong driver state) pass through uninstall
// and pull their dependent cone down and back up with them; dead or
// off-port daemons are restarted in place; diverged manifests are
// rewritten. Nothing outside cone is touched.
func (a *Applied) repair(drifts []Drift, replace map[string]bool, cone []string) error {
	replaceCone := downstreamClosure(a.Stack.Desired, replace)
	order, err := a.Stack.Desired.TopoOrder()
	if err != nil {
		return err
	}

	// 1. Stop the replacement cone, dependents first.
	for i := len(order) - 1; i >= 0; i-- {
		inst := order[i]
		if !replaceCone[inst.ID] {
			continue
		}
		if err := a.driveTo(inst.ID, driver.Inactive); err != nil {
			return err
		}
	}
	// 2. Uninstall what is being replaced, and clear any leftover
	// processes recorded for it.
	for i := len(order) - 1; i >= 0; i-- {
		inst := order[i]
		if !replace[inst.ID] {
			continue
		}
		if err := a.killStray(inst.ID); err != nil {
			return err
		}
		if err := a.driveTo(inst.ID, driver.Uninstalled); err != nil {
			return err
		}
	}
	// 3. Bring the replacement cone back to active, dependencies first.
	for _, inst := range order {
		if !replaceCone[inst.ID] {
			continue
		}
		if err := a.driveTo(inst.ID, driver.Active); err != nil {
			return err
		}
		a.Monitor.ClearDegraded(inst.ID)
	}
	// 4. Restart dead/off-port daemons in place (instances not already
	// handled by replacement).
	restarted := make(map[string]bool)
	for _, d := range drifts {
		if replaceCone[d.Instance] || restarted[d.Instance] {
			continue
		}
		if d.Kind != "process" && d.Kind != "port" {
			continue
		}
		restarted[d.Instance] = true
		if err := a.killStray(d.Instance); err != nil {
			return err
		}
		drv, ok := a.Dep.Driver(d.Instance)
		if !ok {
			return fmt.Errorf("stack %q: no driver for %q", a.Stack.Name, d.Instance)
		}
		if err := drv.Fire("restart", a.Dep); err != nil {
			return err
		}
	}
	// 5. Refresh bindings and rewrite manifests for the cone only
	// (covers "config" drift and records the new PIDs of restarted
	// daemons); instances outside the cone see no write at all.
	coneSet := make(map[string]bool, len(cone))
	for _, id := range cone {
		coneSet[id] = true
	}
	return a.recordBindings(coneSet)
}

// driveTo fires the driver's path from its current state to target.
func (a *Applied) driveTo(id string, target driver.State) error {
	drv, ok := a.Dep.Driver(id)
	if !ok {
		return fmt.Errorf("stack %q: no driver for %q", a.Stack.Name, id)
	}
	if drv.State() == target {
		return nil
	}
	path := drv.SM.PathTo(drv.State(), target)
	if path == nil {
		return fmt.Errorf("stack %q: instance %q: no path %s → %s", a.Stack.Name, id, drv.State(), target)
	}
	for _, action := range path {
		if err := drv.Fire(action, a.Dep); err != nil {
			return err
		}
	}
	return nil
}

// killStray kills every process still carrying the instance's recorded
// daemon name — the dead-but-unreaped original, or a drift-injected
// impostor running off the recorded ports.
func (a *Applied) killStray(id string) error {
	b, ok := a.Stack.Bindings[id]
	if !ok || b.ProcName == "" {
		return nil
	}
	m, ok := a.ctl.Options.World.Machine(b.Machine)
	if !ok {
		return nil
	}
	for _, p := range m.Processes() {
		if p.Name == b.ProcName {
			if err := m.KillProcess(p.PID); err != nil {
				return err
			}
		}
	}
	return nil
}

// DriftTargets exposes the record's bindings as fault-injection
// targets, so a chaos plan can drift the stack first-class (see
// fault.Plan.InjectDrift). Targets are sorted by instance ID, keeping
// seeded drift schedules deterministic.
func (a *Applied) DriftTargets() []fault.DriftTarget {
	ids := a.Stack.InstanceIDs()
	out := make([]fault.DriftTarget, 0, len(ids))
	for _, id := range ids {
		b := a.Stack.Bindings[id]
		m, ok := a.ctl.Options.World.Machine(b.Machine)
		if !ok {
			continue
		}
		out = append(out, fault.DriftTarget{
			Instance:     id,
			Machine:      m,
			ManifestPath: b.ManifestPath,
			PID:          b.PID,
			ProcName:     b.ProcName,
			Command:      b.Command,
		})
	}
	return out
}

// --- small set helpers ---

func damagedIDs(drifts []Drift) []string {
	seen := make(map[string]bool)
	var out []string
	for _, d := range drifts {
		if !seen[d.Instance] {
			seen[d.Instance] = true
			out = append(out, d.Instance)
		}
	}
	sort.Strings(out)
	return out
}

// downstreamClosure returns seed plus every transitive dependent, as a
// set (the upgrade package's closure, reimplemented over its exported
// surface).
func downstreamClosure(f *spec.Full, seed map[string]bool) map[string]bool {
	down := f.Downstream()
	inSet := make(map[string]bool, len(seed))
	var stack []string
	for id := range seed {
		stack = append(stack, id)
	}
	sort.Strings(stack)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if inSet[id] {
			continue
		}
		inSet[id] = true
		stack = append(stack, down[id]...)
	}
	return inSet
}

func union(ids []string, set map[string]bool) []string {
	u := make(map[string]bool, len(ids)+len(set))
	for _, id := range ids {
		u[id] = true
	}
	for id := range set {
		u[id] = true
	}
	out := make([]string, 0, len(u))
	for id := range u {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func subtract(ids, minus []string) []string {
	drop := make(map[string]bool, len(minus))
	for _, id := range minus {
		drop[id] = true
	}
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		if !drop[id] {
			out = append(out, id)
		}
	}
	return out
}
