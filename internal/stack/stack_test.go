package stack

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"engage/internal/deploy"
	"engage/internal/driver"
	"engage/internal/fault"
	"engage/internal/machine"
	"engage/internal/pkgmgr"
	"engage/internal/rdl"
	"engage/internal/resource"
	"engage/internal/spec"
	"engage/internal/workload"
)

// stackRDL is a three-tier chain — app depends (env) on db, both
// daemons inside one server — so replacement repairs have a real
// dependency cone to pull down and back up.
const stackRDL = `
abstract resource "Server" {}
resource "Linux 1.0" extends "Server" {}
resource "Db 1.0" {
    inside "Server"
    config { port: tcp_port = 5432 }
    output { db: struct { port: tcp_port } = { port: config.port } }
}
resource "App 1.0" {
    inside "Server"
    input { db: struct { port: tcp_port } }
    config { port: tcp_port = 9000 }
    env "Db 1.0" { db -> db }
}
`

func stackDrivers(t *testing.T) *deploy.DriverRegistry {
	t.Helper()
	dr := deploy.NewDriverRegistry()
	daemon := func(name string) func(*driver.Context) *driver.StateMachine {
		return func(ctx *driver.Context) *driver.StateMachine {
			spawn := func(c *driver.Context) error {
				p, err := c.Machine.StartProcess(name, name+" --serve", c.Instance.Config["port"].Int)
				if err != nil {
					return err
				}
				c.PutPID("daemon", p.PID)
				c.Charge(2 * time.Second)
				return nil
			}
			stop := func(c *driver.Context) error {
				pid, _ := c.PID("daemon")
				return c.Machine.StopProcess(pid)
			}
			return driver.ServiceMachine(nil, spawn, stop, spawn, nil)
		}
	}
	dr.RegisterName("Db", daemon("dbd"))
	dr.RegisterName("App", daemon("appd"))
	return dr
}

func stackPartial() *spec.Partial {
	p := &spec.Partial{}
	p.Add("server", resource.MakeKey("Linux", "1.0"))
	p.Add("db", resource.MakeKey("Db", "1.0")).In("server")
	p.Add("app", resource.MakeKey("App", "1.0")).In("server")
	return p
}

func setupStack(t *testing.T) (*Controller, *Applied, *machine.World) {
	t.Helper()
	reg, err := rdl.ParseAndResolve(map[string]string{"stack.rdl": stackRDL})
	if err != nil {
		t.Fatal(err)
	}
	w := machine.NewWorld()
	ctl := &Controller{Options: deploy.Options{
		Registry: reg, Drivers: stackDrivers(t), World: w,
		Index: pkgmgr.NewIndex(), ProvisionMissing: true,
	}}
	a, err := ctl.Apply("web", stackPartial())
	if err != nil {
		t.Fatal(err)
	}
	return ctl, a, w
}

func TestApplyRecordsBindings(t *testing.T) {
	_, a, w := setupStack(t)
	if a.Stack.Version != 1 {
		t.Errorf("fresh stack version = %d, want 1", a.Stack.Version)
	}
	m, _ := w.Machine("server")
	for _, id := range []string{"db", "app"} {
		b := a.Stack.Bindings[id]
		if b.Machine != "server" || b.PID == 0 || len(b.Ports) != 1 {
			t.Errorf("%s binding = %+v", id, b)
		}
		if !m.Running(b.PID) || !m.Listening(b.Ports[0]) {
			t.Errorf("%s: recorded daemon should be live on its port", id)
		}
		content, err := m.ReadFile(b.ManifestPath)
		if err != nil || content != b.Manifest {
			t.Errorf("%s manifest on machine = %q, %v (want recorded content)", id, content, err)
		}
	}
	if drifts := a.Verify(); len(drifts) != 0 {
		t.Errorf("fresh stack should verify clean: %v", drifts)
	}
}

func TestStackJSONRoundTrip(t *testing.T) {
	_, a, _ := setupStack(t)
	var buf bytes.Buffer
	if err := a.Stack.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStack(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != a.Stack.Name || got.Version != a.Stack.Version {
		t.Errorf("round trip: %s v%d, want %s v%d", got.Name, got.Version, a.Stack.Name, a.Stack.Version)
	}
	if !reflect.DeepEqual(got.InstanceIDs(), a.Stack.InstanceIDs()) {
		t.Errorf("instance IDs: %v, want %v", got.InstanceIDs(), a.Stack.InstanceIDs())
	}
	if !reflect.DeepEqual(got.Bindings, a.Stack.Bindings) {
		t.Errorf("bindings: %+v, want %+v", got.Bindings, a.Stack.Bindings)
	}
}

// TestReapplyIdempotent pins apply idempotence: re-applying the same
// partial specification keeps the version, the daemons, and their PIDs.
func TestReapplyIdempotent(t *testing.T) {
	_, a, _ := setupStack(t)
	pidsBefore := map[string]int{}
	for id, b := range a.Stack.Bindings {
		pidsBefore[id] = b.PID
	}
	if err := a.Reapply(stackPartial()); err != nil {
		t.Fatal(err)
	}
	if a.Stack.Version != 1 {
		t.Errorf("identical reapply bumped version to %d", a.Stack.Version)
	}
	for id, b := range a.Stack.Bindings {
		if b.PID != pidsBefore[id] {
			t.Errorf("%s: identical reapply replaced the daemon (pid %d -> %d)", id, pidsBefore[id], b.PID)
		}
	}
	if drifts := a.Verify(); len(drifts) != 0 {
		t.Errorf("reapplied stack should verify clean: %v", drifts)
	}
}

// TestReapplyChangedBumpsVersion: a changed desired state goes through
// the incremental upgrade path and bumps the version; the untouched
// instance keeps its daemon.
func TestReapplyChangedBumpsVersion(t *testing.T) {
	_, a, _ := setupStack(t)
	dbPID := a.Stack.Bindings["db"].PID
	changed := stackPartial()
	for _, inst := range changed.Instances {
		if inst.ID == "app" {
			inst.Set("port", resource.PortV(9100))
		}
	}
	if err := a.Reapply(changed); err != nil {
		t.Fatal(err)
	}
	if a.Stack.Version != 2 {
		t.Errorf("changed reapply: version = %d, want 2", a.Stack.Version)
	}
	if got := a.Stack.Bindings["app"].Ports; len(got) != 1 || got[0] != 9100 {
		t.Errorf("app should serve the new port: %v", got)
	}
	if a.Stack.Bindings["db"].PID != dbPID {
		t.Error("untouched db should keep its daemon across the upgrade")
	}
	if drifts := a.Verify(); len(drifts) != 0 {
		t.Errorf("upgraded stack should verify clean: %v", drifts)
	}
}

func TestReconcileRepairsKilledDaemon(t *testing.T) {
	_, a, w := setupStack(t)
	m, _ := w.Machine("server")
	oldPID := a.Stack.Bindings["app"].PID
	dbPID := a.Stack.Bindings["db"].PID
	if err := m.KillProcess(oldPID); err != nil {
		t.Fatal(err)
	}

	rep := a.Reconcile()
	if rep.Converged() || !rep.Repaired || rep.RolledBack {
		t.Fatalf("round = %+v", rep)
	}
	if len(rep.Drifts) != 1 || rep.Drifts[0].Instance != "app" || rep.Drifts[0].Kind != "process" {
		t.Errorf("drifts = %v", rep.Drifts)
	}
	// A dead daemon is restarted in place: cone is just the damaged
	// instance, db is pinned and untouched.
	if !reflect.DeepEqual(rep.Cone, []string{"app"}) || rep.Pinned != len(a.Stack.InstanceIDs())-1 {
		t.Errorf("cone = %v, pinned = %d", rep.Cone, rep.Pinned)
	}
	if rep.SolveStatus != "SAT" {
		t.Errorf("replan status = %s", rep.SolveStatus)
	}
	b := a.Stack.Bindings["app"]
	if b.PID == oldPID || !m.Running(b.PID) || !m.Listening(9000) {
		t.Errorf("app should be back with a fresh daemon: %+v", b)
	}
	if a.Stack.Bindings["db"].PID != dbPID {
		t.Error("db must not be touched by app's repair")
	}
	if rep2 := a.Reconcile(); !rep2.Converged() {
		t.Errorf("second round should converge: %+v", rep2)
	}
}

// TestReconcileReplacementPullsCone: an instance needing replacement
// (driver no longer active) takes its dependents down and back up —
// and nothing else.
func TestReconcileReplacementPullsCone(t *testing.T) {
	_, a, w := setupStack(t)
	m, _ := w.Machine("server")
	drv, _ := a.Dep.Driver("db")
	drv.SetState(driver.Inactive) // simulate a wedged driver

	rep := a.Reconcile()
	if !rep.Repaired {
		t.Fatalf("round = %+v (err %v)", rep, rep.Err)
	}
	if len(rep.Drifts) != 1 || rep.Drifts[0].Kind != "state" {
		t.Errorf("drifts = %v", rep.Drifts)
	}
	// Replacement pulls the downstream cone: app depends on db.
	if !reflect.DeepEqual(rep.Cone, []string{"app", "db"}) {
		t.Errorf("cone = %v, want [app db]", rep.Cone)
	}
	for _, id := range []string{"db", "app"} {
		d, _ := a.Dep.Driver(id)
		if d.State() != driver.Active {
			t.Errorf("%s driver = %s after repair", id, d.State())
		}
		b := a.Stack.Bindings[id]
		if !m.Running(b.PID) || !m.Listening(b.Ports[0]) {
			t.Errorf("%s daemon should be live after replacement: %+v", id, b)
		}
	}
	if drifts := a.Verify(); len(drifts) != 0 {
		t.Errorf("replaced stack should verify clean: %v", drifts)
	}
}

// TestReconcileRollsBackOnRepairFailure pins completes-or-rolls-back:
// when the repair itself fails (every manifest write refused), the
// round must restore the pre-round world — drift intact, no half
// repair — and a later round (fault gone) must finish the job.
func TestReconcileRollsBackOnRepairFailure(t *testing.T) {
	_, a, w := setupStack(t)
	m, _ := w.Machine("server")
	path := a.Stack.Bindings["app"].ManifestPath
	if err := m.WriteFile(path, "# corrupted\n"); err != nil {
		t.Fatal(err)
	}

	plan := fault.NewPlan(1).FailPersistent(machine.OpWriteFile, "", "/etc/engage/stacks/web/*")
	w.SetInjector(plan)
	rep := a.Reconcile()
	if !rep.RolledBack || rep.Repaired || rep.Err == nil {
		t.Fatalf("blocked repair: %+v (err %v)", rep, rep.Err)
	}
	if got, _ := m.ReadFile(path); got != "# corrupted\n" {
		t.Errorf("rollback should leave the drift in place, manifest = %q", got)
	}

	w.SetInjector(nil)
	rep = a.Reconcile()
	if !rep.Repaired {
		t.Fatalf("retry round: %+v (err %v)", rep, rep.Err)
	}
	if got, _ := m.ReadFile(path); got != a.Stack.Bindings["app"].Manifest {
		t.Errorf("manifest should be restored, got %q", got)
	}
	if rep = a.Reconcile(); !rep.Converged() {
		t.Errorf("final round should converge: %+v", rep)
	}
}

// opRecorder is a pass-through injector that logs every substrate
// operation, so tests can prove what a repair did and did not touch.
type opRecorder struct{ ops []machine.Op }

func (r *opRecorder) Inject(op machine.Op) error          { r.ops = append(r.ops, op); return nil }
func (r *opRecorder) CrashDelay(machine.Op) time.Duration { return 0 }
func (r *opRecorder) writes() (paths []string) {
	for _, op := range r.ops {
		if op.Kind == machine.OpWriteFile {
			paths = append(paths, op.Name)
		}
	}
	return paths
}

// TestReconcileConeMinimalityFleet is the 50-seed property test: on
// generated workload fleets (passive instances, so damage is config
// drift), every repair plan must (1) compute the cone as exactly the
// damaged set, (2) pin everything else, (3) write only inside the cone
// — proved by recording every substrate write — and (4) two consecutive
// reconciles of the undamaged stack are converged no-ops.
func TestReconcileConeMinimalityFleet(t *testing.T) {
	totalDrifts := 0
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			reg, partial, err := workload.Generate(workload.Spec{
				Seed: seed, Families: 6, Versions: 2, Machines: 2, Instances: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			w := machine.NewWorld()
			ctl := &Controller{Options: deploy.Options{
				Registry: reg, Drivers: deploy.NewDriverRegistry(), World: w,
				Index: pkgmgr.NewIndex(), ProvisionMissing: true,
			}}
			a, err := ctl.Apply(fmt.Sprintf("fleet-%d", seed), partial)
			if err != nil {
				t.Fatal(err)
			}

			plan := fault.NewPlan(seed).DriftWithProbability(0.4)
			for _, tgt := range a.DriftTargets() {
				plan.InjectDrift(tgt)
			}
			damaged := map[string]bool{}
			for _, ev := range plan.Events() {
				damaged[ev.Op.Name] = true
			}
			totalDrifts += len(damaged)

			rec := &opRecorder{}
			w.SetInjector(rec)
			rep := a.Reconcile()
			w.SetInjector(nil)

			if len(damaged) == 0 {
				if !rep.Converged() {
					t.Fatalf("undamaged fleet should converge: %+v", rep)
				}
			} else {
				if !rep.Repaired {
					t.Fatalf("damaged fleet should repair: %+v (err %v)", rep, rep.Err)
				}
				wantCone := make([]string, 0, len(damaged))
				for id := range damaged {
					wantCone = append(wantCone, id)
				}
				sort.Strings(wantCone)
				// Config drift never escalates to replacement, so the cone
				// is exactly the damaged set and everything else is pinned.
				if !reflect.DeepEqual(rep.Cone, wantCone) {
					t.Errorf("cone = %v, want exactly the damaged set %v", rep.Cone, wantCone)
				}
				if want := len(a.Stack.InstanceIDs()) - len(wantCone); rep.Pinned != want {
					t.Errorf("pinned = %d, want %d", rep.Pinned, want)
				}
				if rep.SolveStatus != "SAT" {
					t.Errorf("replan status = %s", rep.SolveStatus)
				}
				// Minimality, observed at the substrate: the repair wrote
				// only the damaged instances' manifests.
				coneManifests := map[string]bool{}
				for _, id := range rep.Cone {
					coneManifests[a.Stack.Bindings[id].ManifestPath] = true
				}
				for _, p := range rec.writes() {
					if !coneManifests[p] {
						t.Errorf("repair wrote outside the cone: %s", p)
					}
				}
			}

			// Idempotence: two consecutive reconciles of the now-undamaged
			// stack are converged no-ops — zero substrate writes.
			for round := 0; round < 2; round++ {
				rec := &opRecorder{}
				w.SetInjector(rec)
				rep := a.Reconcile()
				w.SetInjector(nil)
				if !rep.Converged() {
					t.Fatalf("no-op round %d: %+v", round+1, rep)
				}
				if writes := rec.writes(); len(writes) != 0 {
					t.Errorf("no-op round %d wrote %v", round+1, writes)
				}
			}
		})
	}
	if totalDrifts == 0 {
		t.Error("sweep never injected drift; the property test is vacuous")
	}
}
