package stack

import (
	"testing"
	"time"

	"engage/internal/deploy"
	"engage/internal/fault"
	"engage/internal/health"
	"engage/internal/machine"
	"engage/internal/pkgmgr"
	"engage/internal/rdl"
	"engage/internal/spec"
)

// healthRDL is stackRDL with health blocks: both daemons declare the
// full probe set, including the synthetic "check" probe answered by the
// fault plan's sickness rules.
const healthRDL = `
abstract resource "Server" {}
resource "Linux 1.0" extends "Server" {}
resource "Db 1.0" {
    inside "Server"
    config { port: tcp_port = 5432 }
    output { db: struct { port: tcp_port } = { port: config.port } }
    health {
        probe "port-open"
        probe "proc-alive"
        probe "config-digest"
        probe "check"
        interval "30s"
        timeout "2s"
        failures 3
        successes 2
    }
}
resource "App 1.0" {
    inside "Server"
    input { db: struct { port: tcp_port } }
    config { port: tcp_port = 9000 }
    env "Db 1.0" { db -> db }
    health {
        probe "port-open"
        probe "proc-alive"
        probe "check"
        interval "30s"
        timeout "2s"
        failures 3
        successes 2
    }
}
`

func setupHealthStack(t *testing.T) (*Controller, *Applied, *machine.World) {
	t.Helper()
	reg, err := rdl.ParseAndResolve(map[string]string{"stack.rdl": healthRDL})
	if err != nil {
		t.Fatal(err)
	}
	w := machine.NewWorld()
	ctl := &Controller{Options: deploy.Options{
		Registry: reg, Drivers: stackDrivers(t), World: w,
		Index: pkgmgr.NewIndex(), ProvisionMissing: true,
	}}
	a, err := ctl.Apply("web", stackPartial())
	if err != nil {
		t.Fatal(err)
	}
	return ctl, a, w
}

// sweep runs n monitor sweeps spaced one probe interval apart.
func sweep(a *Applied, w *machine.World, n int) {
	for i := 0; i < n; i++ {
		w.Clock.Advance(30 * time.Second)
		a.Monitor.Check()
	}
}

func TestApplyTracksDeclaredProbes(t *testing.T) {
	_, a, w := setupHealthStack(t)
	// Daemon-backed instances with health blocks are tracked; the passive
	// server (no health block) is not.
	if got := a.Health.Tracked(); len(got) != 2 || got[0] != "app" || got[1] != "db" {
		t.Fatalf("tracked = %v", got)
	}
	// Fresh instances are Suspect until a probe round passes.
	for _, ih := range a.Health.States() {
		if ih.HealthState() != health.Suspect {
			t.Errorf("%s fresh state = %s, want suspect", ih.Instance, ih.State)
		}
	}
	// One monitor sweep runs the due probe rounds: everything proves
	// healthy (ports served, PIDs live, manifests intact, no sickness).
	a.Monitor.Check()
	for _, ih := range a.Health.States() {
		if ih.HealthState() != health.Healthy {
			t.Errorf("%s after sweep = %s, want healthy", ih.Instance, ih.State)
		}
	}
	r := a.HealthRollup()
	if r.Stack != "web" || r.Summary.WorstState() != health.Healthy || r.Summary.Healthy != 2 {
		t.Errorf("rollup = %+v", r.Summary)
	}
	if len(r.Machines) != 1 || r.Machines[0].Machine != "server" {
		t.Errorf("machine rollups = %+v", r.Machines)
	}
	_ = w
}

// TestSickDaemonDetectedAndRepaired is the subsystem's core contract:
// a running-but-sick daemon (invisible to process/port checks) is
// detected as Unhealthy within FailureThreshold × Interval of virtual
// time, escalated to the reconciler as "health" drift, replaced, and
// proves itself Healthy again — while the healthy instance is left
// completely alone.
func TestSickDaemonDetectedAndRepaired(t *testing.T) {
	_, a, w := setupHealthStack(t)
	a.Monitor.Check() // prove the fleet healthy
	dbPID := a.Stack.Bindings["db"].PID
	appPID := a.Stack.Bindings["app"].PID

	plan := fault.NewPlan(7).SickenPersistent("", "app")
	a.Health.Source = plan
	var injected bool
	for _, tgt := range a.DriftTargets() {
		if _, ok := plan.InjectSickness(tgt, w.Clock.Now()); ok {
			injected = true
		}
	}
	if !injected {
		t.Fatal("sickness should fire on app")
	}

	// Detection: Unhealthy within FailureThreshold × Interval.
	t0 := w.Clock.Now()
	bound := 3 * 30 * time.Second
	for {
		sweep(a, w, 1)
		if st, _ := a.Health.State("app"); st == health.Unhealthy {
			break
		}
		if w.Clock.Now().Sub(t0) > bound {
			t.Fatalf("sickness not detected within %v", bound)
		}
	}
	// The daemon is still running: only probes see the sickness.
	m, _ := w.Machine("server")
	if !m.Running(appPID) {
		t.Fatal("sick daemon should still be running")
	}

	// The reconciler treats Unhealthy as drift and replaces the daemon.
	rep := a.Reconcile()
	if !rep.Repaired || rep.RolledBack {
		t.Fatalf("round = %+v (err %v)", rep, rep.Err)
	}
	var found bool
	for _, d := range rep.Drifts {
		if d.Instance == "app" && d.Kind == "health" {
			found = true
		}
	}
	if !found {
		t.Fatalf("drifts = %v, want app health drift", rep.Drifts)
	}
	newPID := a.Stack.Bindings["app"].PID
	if newPID == appPID {
		t.Error("repair should replace the sick daemon")
	}
	if a.Stack.Bindings["db"].PID != dbPID {
		t.Error("healthy db must not be touched")
	}
	// Replacement cures (the sickness was keyed to the old PID) but the
	// new daemon starts Suspect and must re-prove itself.
	if st, _ := a.Health.State("app"); st != health.Suspect {
		t.Errorf("replaced app = %v, want suspect", st)
	}
	sweep(a, w, 1)
	if st, _ := a.Health.State("app"); st != health.Healthy {
		t.Errorf("app should re-prove healthy, got %v", st)
	}
	if len(plan.Sickened()) != 0 {
		t.Errorf("replacement should cure the sickness: %v", plan.Sickened())
	}
	// And the stack converges.
	if rep := a.Reconcile(); !rep.Converged() {
		t.Errorf("final round should converge: %+v", rep)
	}
}

// TestBrownoutRecoversWithoutRepair: a brownout shorter than the
// detection threshold never becomes drift; one long enough goes
// Unhealthy, then self-heals through Recovering back to Healthy — the
// reconciler replaces it only if a round runs while it is Unhealthy.
func TestBrownoutRecoversWithoutRepair(t *testing.T) {
	_, a, w := setupHealthStack(t)
	a.Monitor.Check()
	plan := fault.NewPlan(7).SickenBrownout("", "db", 4*30*time.Second)
	a.Health.Source = plan
	for _, tgt := range a.DriftTargets() {
		plan.InjectSickness(tgt, w.Clock.Now())
	}
	pid := a.Stack.Bindings["db"].PID

	// Rounds 1-3 fail → Unhealthy at round 3; round 4 (brownout expired)
	// passes → Recovering; round 5 passes → Healthy. No reconcile runs,
	// so the daemon is never replaced.
	sweep(a, w, 3)
	if st, _ := a.Health.State("db"); st != health.Unhealthy {
		t.Fatalf("mid-brownout = %v, want unhealthy", st)
	}
	sweep(a, w, 1)
	if st, _ := a.Health.State("db"); st != health.Recovering {
		t.Fatalf("post-brownout = %v, want recovering", st)
	}
	sweep(a, w, 1)
	if st, _ := a.Health.State("db"); st != health.Healthy {
		t.Fatalf("recovered = %v, want healthy", st)
	}
	if a.Stack.Bindings["db"].PID != pid {
		t.Error("self-healing must not replace the daemon")
	}
	if rep := a.Reconcile(); !rep.Converged() {
		t.Errorf("healed stack should converge: %+v", rep)
	}
}

// TestManifestDriftFailsConfigDigestProbe: config drift is visible to
// the config-digest probe (db declares it), independent of the
// reconciler's own manifest comparison.
func TestManifestDriftFailsConfigDigestProbe(t *testing.T) {
	_, a, w := setupHealthStack(t)
	a.Monitor.Check()
	m, _ := w.Machine("server")
	if err := m.WriteFile(a.Stack.Bindings["db"].ManifestPath, "# corrupted\n"); err != nil {
		t.Fatal(err)
	}
	sweep(a, w, 1)
	ih, ok := a.Health.Instance("db")
	if !ok || ih.HealthState() != health.Suspect {
		t.Fatalf("db after corruption = %+v", ih)
	}
	if ih.Detail == "" {
		t.Error("failing probe should leave a detail")
	}
	// The reconciler repairs the manifest (config drift), and the next
	// probe round passes again.
	if rep := a.Reconcile(); !rep.Repaired {
		t.Fatalf("manifest repair failed: %+v", rep)
	}
	sweep(a, w, 1)
	if st, _ := a.Health.State("db"); st != health.Healthy {
		t.Errorf("repaired db = %v, want healthy", st)
	}
}

// TestReapplyKeepsHealthMemoryAndPrunes: an identical reapply keeps
// probe state; a reapply that drops an instance forgets its schedule.
func TestReapplyKeepsHealthMemoryAndPrunes(t *testing.T) {
	_, a, w := setupHealthStack(t)
	a.Monitor.Check()
	if st, _ := a.Health.State("app"); st != health.Healthy {
		t.Fatal("setup: app should be healthy")
	}
	if err := a.Reapply(stackPartial()); err != nil {
		t.Fatal(err)
	}
	// Same PIDs → health memory preserved, no reset to Suspect.
	if st, _ := a.Health.State("app"); st != health.Healthy {
		t.Errorf("identical reapply reset health to %v", st)
	}

	// Drop app from the desired state: its probe schedule goes too.
	smaller := &spec.Partial{}
	smaller.Add("server", a.Stack.Desired.Instances[0].Key)
	for _, inst := range stackPartial().Instances {
		if inst.ID == "db" {
			smaller.Add("db", inst.Key).In("server")
		}
	}
	if err := a.Reapply(smaller); err != nil {
		t.Fatal(err)
	}
	if _, tracked := a.Health.State("app"); tracked {
		t.Error("dropped instance should be forgotten")
	}
	if got := a.Health.Tracked(); len(got) != 1 || got[0] != "db" {
		t.Errorf("tracked after prune = %v", got)
	}
	_ = w
}
