package migrate

import (
	"fmt"
	"strings"
	"testing"

	"engage/internal/machine"
)

func db(t *testing.T) *Database {
	t.Helper()
	w := machine.NewWorld()
	m, err := w.AddMachine("dbhost", "ubuntu-12.04")
	if err != nil {
		t.Fatal(err)
	}
	return Open(m, "/var/db/fa")
}

func TestInitAndVersion(t *testing.T) {
	d := db(t)
	if d.Exists() {
		t.Fatal("fresh db should not exist")
	}
	if _, err := d.SchemaVersion(); err == nil {
		t.Error("version of uninitialized db should error")
	}
	if err := d.Init(1); err != nil {
		t.Fatal(err)
	}
	if !d.Exists() {
		t.Error("db should exist after Init")
	}
	if err := d.Init(1); err == nil {
		t.Error("double init should fail")
	}
	v, err := d.SchemaVersion()
	if err != nil || v != 1 {
		t.Errorf("SchemaVersion = %d, %v", v, err)
	}
}

func TestRowsAndTables(t *testing.T) {
	d := db(t)
	if err := d.Init(1); err != nil {
		t.Fatal(err)
	}
	d.Insert("applications", "alice|faculty")
	d.Insert("applications", "bob|postdoc")
	d.Insert("users", "admin")
	rows := d.Rows("applications")
	if len(rows) != 2 || rows[0] != "alice|faculty" {
		t.Errorf("Rows = %v", rows)
	}
	if got := d.Rows("missing"); got != nil {
		t.Errorf("missing table rows = %v", got)
	}
	tables := d.Tables()
	if len(tables) != 2 || tables[0] != "applications" || tables[1] != "users" {
		t.Errorf("Tables = %v", tables)
	}
	d.WriteTable("users", nil)
	if len(d.Tables()) != 1 {
		t.Error("empty WriteTable should drop the table")
	}
}

func TestDrop(t *testing.T) {
	d := db(t)
	if err := d.Init(1); err != nil {
		t.Fatal(err)
	}
	d.Insert("t", "row")
	d.Drop()
	if d.Exists() {
		t.Error("dropped db should not exist")
	}
}

// faHistory models the FA application's schema evolution: v1 has
// applications as "name|kind"; v2 adds a status column; v3 splits a
// reviewers table out of applications.
func faHistory(t *testing.T) *History {
	t.Helper()
	h, err := NewHistory(
		Migration{From: 1, To: 2, Name: "add_status", Apply: func(db *Database) error {
			rows := db.Rows("applications")
			for i, r := range rows {
				rows[i] = r + "|pending"
			}
			db.WriteTable("applications", rows)
			return nil
		}},
		Migration{From: 2, To: 3, Name: "split_reviewers", Apply: func(db *Database) error {
			var reviewers []string
			for _, r := range db.Rows("applications") {
				name := strings.SplitN(r, "|", 2)[0]
				reviewers = append(reviewers, name+"|unassigned")
			}
			db.WriteTable("reviewers", reviewers)
			return nil
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMigrationChainPreservesContent(t *testing.T) {
	d := db(t)
	if err := d.Init(1); err != nil {
		t.Fatal(err)
	}
	d.Insert("applications", "alice|faculty")
	d.Insert("applications", "bob|postdoc")

	applied, err := faHistory(t).MigrateTo(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 || applied[0] != "add_status" || applied[1] != "split_reviewers" {
		t.Errorf("applied = %v", applied)
	}
	v, _ := d.SchemaVersion()
	if v != 3 {
		t.Errorf("version = %d", v)
	}
	rows := d.Rows("applications")
	if len(rows) != 2 || rows[0] != "alice|faculty|pending" {
		t.Errorf("content not preserved/transformed: %v", rows)
	}
	if got := d.Rows("reviewers"); len(got) != 2 || got[1] != "bob|unassigned" {
		t.Errorf("reviewers = %v", got)
	}
}

func TestMigrateToSameVersionNoop(t *testing.T) {
	d := db(t)
	if err := d.Init(2); err != nil {
		t.Fatal(err)
	}
	applied, err := faHistory(t).MigrateTo(d, 2)
	if err != nil || len(applied) != 0 {
		t.Errorf("same-version migrate: %v, %v", applied, err)
	}
}

func TestMigrateBackwardsRejected(t *testing.T) {
	d := db(t)
	if err := d.Init(3); err != nil {
		t.Fatal(err)
	}
	if _, err := faHistory(t).MigrateTo(d, 1); err == nil {
		t.Error("backwards migration must be rejected")
	}
}

func TestMigrateMissingStep(t *testing.T) {
	d := db(t)
	if err := d.Init(1); err != nil {
		t.Fatal(err)
	}
	h, err := NewHistory(Migration{From: 2, To: 3, Name: "later", Apply: func(*Database) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.MigrateTo(d, 3); err == nil {
		t.Error("gap in chain should error")
	}
}

func TestMigrationFailureStopsChain(t *testing.T) {
	d := db(t)
	if err := d.Init(1); err != nil {
		t.Fatal(err)
	}
	h, err := NewHistory(
		Migration{From: 1, To: 2, Name: "ok", Apply: func(*Database) error { return nil }},
		Migration{From: 2, To: 3, Name: "boom", Apply: func(*Database) error { return fmt.Errorf("constraint violation") }},
	)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := h.MigrateTo(d, 3)
	if err == nil || !strings.Contains(err.Error(), "constraint violation") {
		t.Errorf("failure should surface: %v", err)
	}
	if len(applied) != 1 || applied[0] != "ok" {
		t.Errorf("applied = %v", applied)
	}
	v, _ := d.SchemaVersion()
	if v != 2 {
		t.Errorf("version should stop at 2, got %d", v)
	}
}

func TestNewHistoryValidation(t *testing.T) {
	if _, err := NewHistory(Migration{From: 1, To: 3, Name: "skip"}); err == nil {
		t.Error("multi-step migration should be rejected")
	}
	if _, err := NewHistory(
		Migration{From: 1, To: 2, Name: "a"},
		Migration{From: 1, To: 2, Name: "b"},
	); err == nil {
		t.Error("duplicate From should be rejected")
	}
}
