// Package migrate implements a South-style database schema migration
// framework over the simulated machine substrate. The paper's upgrade
// case study (§6.2) uses South to upgrade the FA application across a
// database schema change while preserving content; this package provides
// the equivalent: schema-versioned databases stored on a machine's
// filesystem, forward migrations applied in a chain, and content
// preservation verified by tests.
package migrate

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"engage/internal/machine"
)

// Database is a simulated database rooted at a filesystem path on a
// machine. Tables are flat files of rows; the schema version is a
// counter file. Because the files live on the machine, the upgrade
// framework's snapshot/restore covers database state for free.
type Database struct {
	Machine *machine.Machine
	Root    string
}

// Open returns a handle to the database rooted at root (it need not
// exist yet; call Init).
func Open(m *machine.Machine, root string) *Database {
	return &Database{Machine: m, Root: strings.TrimSuffix(root, "/")}
}

// Init creates the database at schema version v; it fails if the
// database already exists.
func (db *Database) Init(v int) error {
	if db.Exists() {
		return fmt.Errorf("migrate: database at %s already exists", db.Root)
	}
	return db.Machine.WriteFile(db.versionPath(), strconv.Itoa(v))
}

// Exists reports whether the database has been initialized.
func (db *Database) Exists() bool { return db.Machine.Exists(db.versionPath()) }

// Drop deletes the database.
func (db *Database) Drop() { db.Machine.RemoveTree(db.Root) }

// SchemaVersion returns the current schema version.
func (db *Database) SchemaVersion() (int, error) {
	s, err := db.Machine.ReadFile(db.versionPath())
	if err != nil {
		return 0, fmt.Errorf("migrate: database at %s not initialized", db.Root)
	}
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("migrate: corrupt schema version %q", s)
	}
	return v, nil
}

func (db *Database) setVersion(v int) error {
	return db.Machine.WriteFile(db.versionPath(), strconv.Itoa(v))
}

func (db *Database) versionPath() string { return db.Root + "/schema_version" }

func (db *Database) tablePath(table string) string { return db.Root + "/tables/" + table }

// Insert appends a row to a table.
func (db *Database) Insert(table, row string) {
	rows := db.Rows(table)
	rows = append(rows, row)
	db.Machine.WriteFile(db.tablePath(table), strings.Join(rows, "\n"))
}

// Rows returns a table's rows (empty for a missing table).
func (db *Database) Rows(table string) []string {
	content, err := db.Machine.ReadFile(db.tablePath(table))
	if err != nil || content == "" {
		return nil
	}
	return strings.Split(content, "\n")
}

// WriteTable replaces a table's contents.
func (db *Database) WriteTable(table string, rows []string) {
	if len(rows) == 0 {
		db.Machine.RemoveFile(db.tablePath(table))
		return
	}
	db.Machine.WriteFile(db.tablePath(table), strings.Join(rows, "\n"))
}

// Tables lists table names, sorted.
func (db *Database) Tables() []string {
	prefix := db.Root + "/tables/"
	var out []string
	for _, p := range db.Machine.List(prefix) {
		out = append(out, strings.TrimPrefix(p, prefix))
	}
	sort.Strings(out)
	return out
}

// Migration transforms a database from schema From to schema To.
type Migration struct {
	From, To int
	Name     string
	Apply    func(db *Database) error
}

// History is an ordered set of migrations forming a chain.
type History struct {
	migrations map[int]Migration // keyed by From
}

// NewHistory builds a history; duplicate From versions are an error.
func NewHistory(ms ...Migration) (*History, error) {
	h := &History{migrations: make(map[int]Migration, len(ms))}
	for _, m := range ms {
		if m.To != m.From+1 {
			return nil, fmt.Errorf("migrate: migration %q must step one version (%d→%d)", m.Name, m.From, m.To)
		}
		if _, dup := h.migrations[m.From]; dup {
			return nil, fmt.Errorf("migrate: duplicate migration from version %d", m.From)
		}
		h.migrations[m.From] = m
	}
	return h, nil
}

// MigrateTo applies migrations in order until the database reaches the
// target schema version. Migrating backwards is an error (South-style
// forward-only chains here; the upgrade framework handles rollback by
// snapshot restore instead). Each applied migration's name is returned.
func (h *History) MigrateTo(db *Database, target int) ([]string, error) {
	cur, err := db.SchemaVersion()
	if err != nil {
		return nil, err
	}
	if target < cur {
		return nil, fmt.Errorf("migrate: cannot migrate backwards from %d to %d (restore a backup instead)", cur, target)
	}
	var applied []string
	for cur < target {
		m, ok := h.migrations[cur]
		if !ok {
			return applied, fmt.Errorf("migrate: no migration from version %d", cur)
		}
		if err := m.Apply(db); err != nil {
			return applied, fmt.Errorf("migrate: migration %q (%d→%d): %w", m.Name, m.From, m.To, err)
		}
		if err := db.setVersion(m.To); err != nil {
			return applied, err
		}
		cur = m.To
		applied = append(applied, m.Name)
	}
	return applied, nil
}
