// Package version implements parsing, comparison, and range matching for
// component versions as used in Engage resource keys.
//
// Engage resource keys are typically "Name Version" pairs (e.g.,
// "Tomcat 6.0.18"). Dependencies may constrain versions with ranges,
// e.g. "at least 5.5 but before 6.0.29" (the OpenMRS example from the
// paper). Ranges are expanded by the RDL front end into disjunctions of
// the concrete versions present in the resource library, so the
// configuration engine itself only ever sees exact keys.
package version

import (
	"fmt"
	"strconv"
	"strings"
)

// Version is a dotted numeric version with an optional trailing tag
// (e.g., "10.6", "6.0.18", "1.8", "2.0-beta"). Comparison is numeric on
// the dotted components; a tagged version sorts before the same untagged
// version (1.0-beta < 1.0), matching common packaging conventions.
type Version struct {
	Parts []int
	Tag   string
}

// Parse parses a version string. It accepts one or more dot-separated
// non-negative integers, optionally followed by "-tag".
func Parse(s string) (Version, error) {
	if s == "" {
		return Version{}, fmt.Errorf("version: empty string")
	}
	body := s
	tag := ""
	if i := strings.IndexByte(s, '-'); i >= 0 {
		body, tag = s[:i], s[i+1:]
		if tag == "" {
			return Version{}, fmt.Errorf("version %q: empty tag", s)
		}
	}
	fields := strings.Split(body, ".")
	parts := make([]int, 0, len(fields))
	for _, f := range fields {
		if f == "" {
			return Version{}, fmt.Errorf("version %q: empty component", s)
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			return Version{}, fmt.Errorf("version %q: bad component %q", s, f)
		}
		parts = append(parts, n)
	}
	return Version{Parts: parts, Tag: tag}, nil
}

// MustParse is Parse that panics on error; for use with constants.
func MustParse(s string) Version {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders the version in canonical form.
func (v Version) String() string {
	var b strings.Builder
	for i, p := range v.Parts {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(p))
	}
	if v.Tag != "" {
		b.WriteByte('-')
		b.WriteString(v.Tag)
	}
	return b.String()
}

// Compare returns -1, 0, or +1 as v is less than, equal to, or greater
// than w. Missing components compare as zero (6.0 == 6.0.0). A tagged
// version is less than the equivalent untagged version; two distinct
// tags compare lexicographically.
func (v Version) Compare(w Version) int {
	n := len(v.Parts)
	if len(w.Parts) > n {
		n = len(w.Parts)
	}
	for i := 0; i < n; i++ {
		a, b := 0, 0
		if i < len(v.Parts) {
			a = v.Parts[i]
		}
		if i < len(w.Parts) {
			b = w.Parts[i]
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
	}
	switch {
	case v.Tag == w.Tag:
		return 0
	case v.Tag == "":
		return 1
	case w.Tag == "":
		return -1
	case v.Tag < w.Tag:
		return -1
	default:
		return 1
	}
}

// Less reports whether v < w.
func (v Version) Less(w Version) bool { return v.Compare(w) < 0 }

// Range is a half-open or closed version interval. A nil bound is
// unbounded on that side.
type Range struct {
	Min          *Version // nil: unbounded below
	Max          *Version // nil: unbounded above
	MinInclusive bool
	MaxInclusive bool
}

// Contains reports whether version v lies in the range.
func (r Range) Contains(v Version) bool {
	if r.Min != nil {
		c := v.Compare(*r.Min)
		if c < 0 || (c == 0 && !r.MinInclusive) {
			return false
		}
	}
	if r.Max != nil {
		c := v.Compare(*r.Max)
		if c > 0 || (c == 0 && !r.MaxInclusive) {
			return false
		}
	}
	return true
}

// ParseRange parses interval notation: "[5.5, 6.0.29)", "(1.0, 2.0]",
// "[5,)" (at least 5), "(,2.0)" (before 2.0). Whitespace around the
// comma and bounds is ignored.
func ParseRange(s string) (Range, error) {
	t := strings.TrimSpace(s)
	if len(t) < 3 {
		return Range{}, fmt.Errorf("version range %q: too short", s)
	}
	var r Range
	switch t[0] {
	case '[':
		r.MinInclusive = true
	case '(':
	default:
		return Range{}, fmt.Errorf("version range %q: must start with [ or (", s)
	}
	switch t[len(t)-1] {
	case ']':
		r.MaxInclusive = true
	case ')':
	default:
		return Range{}, fmt.Errorf("version range %q: must end with ] or )", s)
	}
	inner := t[1 : len(t)-1]
	i := strings.IndexByte(inner, ',')
	if i < 0 {
		return Range{}, fmt.Errorf("version range %q: missing comma", s)
	}
	lo := strings.TrimSpace(inner[:i])
	hi := strings.TrimSpace(inner[i+1:])
	if lo != "" {
		v, err := Parse(lo)
		if err != nil {
			return Range{}, fmt.Errorf("version range %q: %v", s, err)
		}
		r.Min = &v
	}
	if hi != "" {
		v, err := Parse(hi)
		if err != nil {
			return Range{}, fmt.Errorf("version range %q: %v", s, err)
		}
		r.Max = &v
	}
	if r.Min != nil && r.Max != nil {
		c := r.Min.Compare(*r.Max)
		if c > 0 || (c == 0 && !(r.MinInclusive && r.MaxInclusive)) {
			return Range{}, fmt.Errorf("version range %q: empty interval", s)
		}
	}
	return r, nil
}

// String renders the range in interval notation.
func (r Range) String() string {
	var b strings.Builder
	if r.MinInclusive {
		b.WriteByte('[')
	} else {
		b.WriteByte('(')
	}
	if r.Min != nil {
		b.WriteString(r.Min.String())
	}
	b.WriteString(", ")
	if r.Max != nil {
		b.WriteString(r.Max.String())
	}
	if r.MaxInclusive {
		b.WriteByte(']')
	} else {
		b.WriteByte(')')
	}
	return b.String()
}
