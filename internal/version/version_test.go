package version

import (
	"testing"
	"testing/quick"
)

func TestParseBasic(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"1", "1"},
		{"6.0.18", "6.0.18"},
		{"10.6", "10.6"},
		{"1.0-beta", "1.0-beta"},
		{"0.0.1", "0.0.1"},
	}
	for _, c := range cases {
		v, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if v.String() != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, v.String(), c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "a.b", "1..2", "-beta", "1.", ".1", "1.0-", "1.-2"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1", "2", -1},
		{"2", "1", 1},
		{"1.0", "1", 0},
		{"6.0", "6.0.0", 0},
		{"6.0.18", "6.0.29", -1},
		{"5.5", "6.0.29", -1},
		{"10.6", "10.10", -1},
		{"1.0-beta", "1.0", -1},
		{"1.0", "1.0-beta", 1},
		{"1.0-alpha", "1.0-beta", -1},
		{"1.0-beta", "1.0-beta", 0},
	}
	for _, c := range cases {
		got := MustParse(c.a).Compare(MustParse(c.b))
		if got != c.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLess(t *testing.T) {
	if !MustParse("5.5").Less(MustParse("6.0.29")) {
		t.Error("5.5 should be less than 6.0.29")
	}
	if MustParse("6.0.29").Less(MustParse("6.0.29")) {
		t.Error("6.0.29 should not be less than itself")
	}
}

func TestRangeContains(t *testing.T) {
	// The paper's Tomcat constraint: at least 5.5 but before 6.0.29.
	r, err := ParseRange("[5.5, 6.0.29)")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    string
		want bool
	}{
		{"5.5", true},
		{"6.0.18", true},
		{"6.0.29", false},
		{"5.4", false},
		{"6.0.28", true},
		{"7.0", false},
	}
	for _, c := range cases {
		if got := r.Contains(MustParse(c.v)); got != c.want {
			t.Errorf("[5.5,6.0.29).Contains(%s) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestRangeUnbounded(t *testing.T) {
	// Java version 5 or greater (OpenMRS requirement).
	r, err := ParseRange("[5,)")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains(MustParse("5")) || !r.Contains(MustParse("6")) || !r.Contains(MustParse("100.2")) {
		t.Error("[5,) should contain 5, 6, 100.2")
	}
	if r.Contains(MustParse("4.9")) {
		t.Error("[5,) should not contain 4.9")
	}

	r2, err := ParseRange("(,2.0)")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Contains(MustParse("1.9")) || r2.Contains(MustParse("2.0")) {
		t.Error("(,2.0) bounds wrong")
	}
}

func TestRangeExclusiveMin(t *testing.T) {
	r, err := ParseRange("(1.0, 2.0]")
	if err != nil {
		t.Fatal(err)
	}
	if r.Contains(MustParse("1.0")) {
		t.Error("(1.0,2.0] should not contain 1.0")
	}
	if !r.Contains(MustParse("2.0")) {
		t.Error("(1.0,2.0] should contain 2.0")
	}
}

func TestRangeErrors(t *testing.T) {
	for _, in := range []string{"", "[", "[1,2", "1,2)", "[2,1]", "[1.0,1.0)", "(1.0,1.0]", "[a,b]", "[1 2]"} {
		if _, err := ParseRange(in); err == nil {
			t.Errorf("ParseRange(%q): expected error", in)
		}
	}
}

func TestRangeString(t *testing.T) {
	for _, s := range []string{"[5.5, 6.0.29)", "[5, )", "(, 2.0)", "(1.0, 2.0]"} {
		r, err := ParseRange(s)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ParseRange(r.String())
		if err != nil {
			t.Fatalf("round-trip of %q -> %q failed: %v", s, r.String(), err)
		}
		if r2.String() != r.String() {
			t.Errorf("round trip mismatch: %q vs %q", r.String(), r2.String())
		}
	}
}

// Property: Compare is antisymmetric and reflexive over generated versions.
func TestCompareProperties(t *testing.T) {
	gen := func(parts []uint8) Version {
		if len(parts) == 0 {
			parts = []uint8{0}
		}
		if len(parts) > 4 {
			parts = parts[:4]
		}
		v := Version{Parts: make([]int, len(parts))}
		for i, p := range parts {
			v.Parts[i] = int(p % 50)
		}
		return v
	}
	antisym := func(a, b []uint8) bool {
		va, vb := gen(a), gen(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
	refl := func(a []uint8) bool {
		va := gen(a)
		return va.Compare(va) == 0
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
}

// Property: parsing the String form yields an equal version.
func TestStringRoundTrip(t *testing.T) {
	f := func(parts []uint8, tagged bool) bool {
		if len(parts) == 0 {
			parts = []uint8{1}
		}
		if len(parts) > 4 {
			parts = parts[:4]
		}
		v := Version{Parts: make([]int, len(parts))}
		for i, p := range parts {
			v.Parts[i] = int(p)
		}
		if tagged {
			v.Tag = "rc1"
		}
		w, err := Parse(v.String())
		return err == nil && w.Compare(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
