package upgrade

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"engage/internal/config"
	"engage/internal/deploy"
	"engage/internal/driver"
	"engage/internal/machine"
	"engage/internal/migrate"
	"engage/internal/rdl"
	"engage/internal/resource"
	"engage/internal/spec"
)

// The FA application scenario from §6.2: two snapshots of a production
// application, with user interface, application logic, and database
// schema changes between them; the upgrade must preserve database
// content, and an injected error must roll back to the prior version.
const faRDL = `
abstract resource "Server" {}
resource "Mac 10.6" extends "Server" {}

resource "Database 1.0" {
    inside "Server"
    config { port: tcp_port = 5432 }
    output { db: struct { port: tcp_port } = { port: config.port } }
}

resource "FA 1.0" {
    inside "Server"
    input { db: struct { port: tcp_port } }
    peer "Database 1.0" { db -> db }
}

resource "FA 2.0" {
    inside "Server"
    input { db: struct { port: tcp_port } }
    peer "Database 1.0" { db -> db }
}
`

const dbRoot = "/var/db/fa"

type faFixture struct {
	reg     *resource.Registry
	world   *machine.World
	drivers *deploy.DriverRegistry
	// failV2 makes the FA 2.0 install action fail (error injection).
	failV2 bool
}

func newFixture(t *testing.T) *faFixture {
	t.Helper()
	reg, err := rdl.ParseAndResolve(map[string]string{"fa.rdl": faRDL})
	if err != nil {
		t.Fatal(err)
	}
	f := &faFixture{reg: reg, world: machine.NewWorld()}
	f.drivers = deploy.NewDriverRegistry()

	f.drivers.RegisterName("Database", func(ctx *driver.Context) *driver.StateMachine {
		return driver.ServiceMachine(
			func(c *driver.Context) error { // install: init schema v1 if absent
				c.Charge(45 * time.Second)
				db := migrate.Open(c.Machine, dbRoot)
				if !db.Exists() {
					return db.Init(1)
				}
				return nil
			},
			func(c *driver.Context) error { // start
				c.Charge(15 * time.Second)
				p, err := c.Machine.StartProcess("fadb", "fadb", c.Instance.Config["port"].Int)
				if err != nil {
					return err
				}
				c.PutPID("daemon", p.PID)
				return nil
			},
			func(c *driver.Context) error { // stop
				pid, _ := c.PID("daemon")
				return c.Machine.StopProcess(pid)
			},
			nil,
			func(c *driver.Context) error { // uninstall keeps data (like dropping a package, not the DB)
				return nil
			},
		)
	})

	install := func(version string, migrateTo int, fail *bool) driver.ActionFunc {
		return func(c *driver.Context) error {
			c.Charge(30 * time.Second)
			if fail != nil && *fail {
				return fmt.Errorf("injected install failure in FA %s", version)
			}
			db := migrate.Open(c.Machine, dbRoot)
			if migrateTo > 0 && db.Exists() {
				h, err := migrate.NewHistory(migrate.Migration{
					From: 1, To: 2, Name: "add_status",
					Apply: func(d *migrate.Database) error {
						rows := d.Rows("applications")
						for i, r := range rows {
							rows[i] = r + "|pending"
						}
						d.WriteTable("applications", rows)
						return nil
					},
				})
				if err != nil {
					return err
				}
				cur, err := db.SchemaVersion()
				if err != nil {
					return err
				}
				if cur < migrateTo {
					if _, err := h.MigrateTo(db, migrateTo); err != nil {
						return err
					}
				}
			}
			c.Machine.WriteFile("/opt/fa/version", version)
			return nil
		}
	}
	uninstall := func(c *driver.Context) error {
		c.Machine.RemoveFile("/opt/fa/version")
		return nil
	}
	f.drivers.RegisterKey(resource.MakeKey("FA", "1.0"), func(ctx *driver.Context) *driver.StateMachine {
		return driver.LibraryMachine(install("1.0", 0, nil), uninstall)
	})
	f.drivers.RegisterKey(resource.MakeKey("FA", "2.0"), func(ctx *driver.Context) *driver.StateMachine {
		return driver.LibraryMachine(install("2.0", 2, &f.failV2), uninstall)
	})
	return f
}

func (f *faFixture) opts() deploy.Options {
	return deploy.Options{
		Registry: f.reg, Drivers: f.drivers, World: f.world, ProvisionMissing: true,
	}
}

func (f *faFixture) fullSpec(t *testing.T, faVersion string) *spec.Full {
	t.Helper()
	var p spec.Partial
	p.Add("server", resource.MakeKey("Mac", "10.6"))
	p.Add("db", resource.MakeKey("Database", "1.0")).In("server")
	p.Add("fa", resource.MakeKey("FA", faVersion)).In("server")
	full, err := config.New(f.reg).Configure(&p)
	if err != nil {
		t.Fatal(err)
	}
	return full
}

// deployV1 deploys FA 1.0 and seeds database content.
func (f *faFixture) deployV1(t *testing.T) (*deploy.Deployment, *spec.Full) {
	t.Helper()
	oldSpec := f.fullSpec(t, "1.0")
	d, err := deploy.New(oldSpec, f.opts())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Deploy(); err != nil {
		t.Fatal(err)
	}
	m, _ := f.world.Machine("server")
	db := migrate.Open(m, dbRoot)
	db.Insert("applications", "alice|faculty")
	db.Insert("applications", "bob|postdoc")
	return d, oldSpec
}

func TestComputeDiff(t *testing.T) {
	f := newFixture(t)
	oldSpec := f.fullSpec(t, "1.0")
	newSpec := f.fullSpec(t, "2.0")
	d := Compute(oldSpec, newSpec)
	if len(d.Changed) != 1 || d.Changed[0] != "fa" {
		t.Errorf("Changed = %v", d.Changed)
	}
	if len(d.Kept) != 2 {
		t.Errorf("Kept = %v", d.Kept)
	}
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Errorf("Added/Removed = %v/%v", d.Added, d.Removed)
	}
}

func TestUpgradePreservesContent(t *testing.T) {
	f := newFixture(t)
	old, oldSpec := f.deployV1(t)
	newSpec := f.fullSpec(t, "2.0")

	u := &Upgrader{Options: f.opts()}
	newDep, res, err := u.Upgrade(old, oldSpec, newSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.RolledBack {
		t.Fatalf("unexpected rollback: %v", res.Cause)
	}
	if !newDep.Deployed() {
		t.Fatalf("new system should be deployed: %v", newDep.Status())
	}

	m, _ := f.world.Machine("server")
	v, err := m.ReadFile("/opt/fa/version")
	if err != nil || v != "2.0" {
		t.Errorf("app version = %q, %v", v, err)
	}
	db := migrate.Open(m, dbRoot)
	sv, _ := db.SchemaVersion()
	if sv != 2 {
		t.Errorf("schema version = %d, want 2", sv)
	}
	rows := db.Rows("applications")
	if len(rows) != 2 || rows[0] != "alice|faculty|pending" {
		t.Errorf("content not preserved through migration: %v", rows)
	}
	if !m.Listening(5432) {
		t.Error("database should be running after upgrade")
	}
}

func TestUpgradeRollbackOnFailure(t *testing.T) {
	f := newFixture(t)
	old, oldSpec := f.deployV1(t)
	newSpec := f.fullSpec(t, "2.0")
	f.failV2 = true // inject the paper's "introduce an error in the second application version"

	u := &Upgrader{Options: f.opts()}
	restored, res, err := u.Upgrade(old, oldSpec, newSpec)
	if err != nil {
		t.Fatalf("rollback itself failed: %v", err)
	}
	if !res.RolledBack {
		t.Fatal("expected rollback")
	}
	if res.Cause == nil || !strings.Contains(res.Cause.Error(), "injected install failure") {
		t.Errorf("cause = %v", res.Cause)
	}
	if !restored.Deployed() {
		t.Fatalf("restored system should be running: %v", restored.Status())
	}

	m, _ := f.world.Machine("server")
	v, err := m.ReadFile("/opt/fa/version")
	if err != nil || v != "1.0" {
		t.Errorf("rolled-back version = %q, %v", v, err)
	}
	db := migrate.Open(m, dbRoot)
	sv, _ := db.SchemaVersion()
	if sv != 1 {
		t.Errorf("schema should be restored to 1, got %d", sv)
	}
	rows := db.Rows("applications")
	if len(rows) != 2 || rows[0] != "alice|faculty" {
		t.Errorf("original content must survive rollback: %v", rows)
	}
	if !m.Listening(5432) {
		t.Error("database should be running after rollback")
	}
}

func TestUpgradeAddsAndRemoves(t *testing.T) {
	// Removing the fa instance entirely (downgrade to just the DB).
	f := newFixture(t)
	old, oldSpec := f.deployV1(t)

	var p spec.Partial
	p.Add("server", resource.MakeKey("Mac", "10.6"))
	p.Add("db", resource.MakeKey("Database", "1.0")).In("server")
	newSpec, err := config.New(f.reg).Configure(&p)
	if err != nil {
		t.Fatal(err)
	}

	u := &Upgrader{Options: f.opts()}
	newDep, res, err := u.Upgrade(old, oldSpec, newSpec)
	if err != nil || res.RolledBack {
		t.Fatalf("upgrade failed: %v / %+v", err, res)
	}
	if len(res.Diff.Removed) != 1 || res.Diff.Removed[0] != "fa" {
		t.Errorf("Removed = %v", res.Diff.Removed)
	}
	m, _ := f.world.Machine("server")
	if m.Exists("/opt/fa/version") {
		t.Error("removed component's files should be uninstalled")
	}
	if !newDep.Deployed() {
		t.Error("remaining system should be deployed")
	}
}
