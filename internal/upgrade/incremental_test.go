package upgrade

import (
	"strings"
	"testing"

	"engage/internal/driver"
	"engage/internal/migrate"
	"engage/internal/resource"
	"engage/internal/spec"
)

func TestPlanIncrementalAppOnly(t *testing.T) {
	f := newFixture(t)
	oldSpec := f.fullSpec(t, "1.0")
	newSpec := f.fullSpec(t, "2.0")
	plan := PlanIncremental(oldSpec, newSpec)

	if len(plan.Diff.Changed) != 1 || plan.Diff.Changed[0] != "fa" {
		t.Errorf("Changed = %v", plan.Diff.Changed)
	}
	// fa has no dependents, so the affected sets are just {fa}.
	if len(plan.AffectedOld) != 1 || plan.AffectedOld[0] != "fa" {
		t.Errorf("AffectedOld = %v", plan.AffectedOld)
	}
	if len(plan.AffectedNew) != 1 || plan.AffectedNew[0] != "fa" {
		t.Errorf("AffectedNew = %v", plan.AffectedNew)
	}
	// server and db keep running.
	if len(plan.Untouched) != 2 {
		t.Errorf("Untouched = %v", plan.Untouched)
	}
}

func TestPlanIncrementalReconfigured(t *testing.T) {
	f := newFixture(t)
	oldSpec := f.fullSpec(t, "1.0")
	newSpec := f.fullSpec(t, "1.0")
	// Change the database's port: db is reconfigured; its dependent fa
	// joins the affected closure.
	db := newSpec.MustFind("db")
	db.Config["port"] = resource.PortV(5433)
	plan := PlanIncremental(oldSpec, newSpec)
	if len(plan.Reconfigured) != 1 || plan.Reconfigured[0] != "db" {
		t.Fatalf("Reconfigured = %v", plan.Reconfigured)
	}
	wantAffected := map[string]bool{"db": true, "fa": true}
	if len(plan.AffectedOld) != 2 {
		t.Fatalf("AffectedOld = %v", plan.AffectedOld)
	}
	for _, id := range plan.AffectedOld {
		if !wantAffected[id] {
			t.Errorf("unexpected affected %q", id)
		}
	}
	if len(plan.Untouched) != 1 || plan.Untouched[0] != "server" {
		t.Errorf("Untouched = %v", plan.Untouched)
	}
}

func TestIncrementalUpgradeLeavesDatabaseRunning(t *testing.T) {
	f := newFixture(t)
	old, oldSpec := f.deployV1(t)
	newSpec := f.fullSpec(t, "2.0")

	m, _ := f.world.Machine("server")
	dbProcBefore, ok := m.FindProcess("fadb")
	if !ok {
		t.Fatal("database daemon should be running")
	}

	u := &Upgrader{Options: f.opts()}
	newDep, res, err := u.UpgradeIncremental(old, oldSpec, newSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.RolledBack {
		t.Fatalf("unexpected rollback: %v", res.Cause)
	}
	if !newDep.Deployed() {
		t.Fatalf("status: %v", newDep.Status())
	}

	// The database daemon was never restarted: same PID.
	dbProcAfter, ok := m.FindProcess("fadb")
	if !ok {
		t.Fatal("database daemon should still be running")
	}
	if dbProcAfter.PID != dbProcBefore.PID {
		t.Errorf("incremental upgrade must not restart the database: pid %d → %d",
			dbProcBefore.PID, dbProcAfter.PID)
	}

	// The app was upgraded and the migration ran.
	v, err := m.ReadFile("/opt/fa/version")
	if err != nil || v != "2.0" {
		t.Errorf("version = %q, %v", v, err)
	}
	db := migrate.Open(m, dbRoot)
	sv, _ := db.SchemaVersion()
	if sv != 2 {
		t.Errorf("schema = %d", sv)
	}
	rows := db.Rows("applications")
	if len(rows) != 2 || rows[0] != "alice|faculty|pending" {
		t.Errorf("content: %v", rows)
	}
}

func TestIncrementalCheaperThanFull(t *testing.T) {
	// Same upgrade, both strategies; incremental must consume strictly
	// less virtual time (ablation A5's assertion).
	run := func(incremental bool) (elapsed int64) {
		f := newFixture(t)
		old, oldSpec := f.deployV1(t)
		newSpec := f.fullSpec(t, "2.0")
		u := &Upgrader{Options: f.opts()}
		var res *Result
		var err error
		if incremental {
			_, res, err = u.UpgradeIncremental(old, oldSpec, newSpec)
		} else {
			_, res, err = u.Upgrade(old, oldSpec, newSpec)
		}
		if err != nil || res.RolledBack {
			t.Fatalf("upgrade failed: %v %v", err, res)
		}
		return int64(res.Elapsed)
	}
	full := run(false)
	incr := run(true)
	if incr >= full {
		t.Errorf("incremental (%d) should beat full (%d)", incr, full)
	}
}

func TestIncrementalRollback(t *testing.T) {
	f := newFixture(t)
	old, oldSpec := f.deployV1(t)
	newSpec := f.fullSpec(t, "2.0")
	f.failV2 = true

	u := &Upgrader{Options: f.opts()}
	restored, res, err := u.UpgradeIncremental(old, oldSpec, newSpec)
	if err != nil {
		t.Fatalf("rollback failed: %v", err)
	}
	if !res.RolledBack {
		t.Fatal("expected rollback")
	}
	if res.Cause == nil || !strings.Contains(res.Cause.Error(), "injected") {
		t.Errorf("cause = %v", res.Cause)
	}
	if !restored.Deployed() {
		t.Fatalf("restored system down: %v", restored.Status())
	}
	m, _ := f.world.Machine("server")
	v, _ := m.ReadFile("/opt/fa/version")
	if v != "1.0" {
		t.Errorf("rolled-back version = %q", v)
	}
	db := migrate.Open(m, dbRoot)
	rows := db.Rows("applications")
	if len(rows) != 2 || rows[0] != "alice|faculty" {
		t.Errorf("content after rollback: %v", rows)
	}
	if !m.Listening(5432) {
		t.Error("database should be listening after rollback")
	}
}

func TestAdoptedStatesVisible(t *testing.T) {
	f := newFixture(t)
	old, oldSpec := f.deployV1(t)
	newSpec := f.fullSpec(t, "2.0")
	u := &Upgrader{Options: f.opts()}
	newDep, _, err := u.UpgradeIncremental(old, oldSpec, newSpec)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := newDep.StateOf("db")
	if !ok || st != driver.Active {
		t.Errorf("adopted db state = %v, %v", st, ok)
	}
	// Adopted scratch: the db driver in the new deployment can stop the
	// daemon it never started.
	if err := newDep.Shutdown(); err != nil {
		t.Fatalf("shutdown using adopted PIDs: %v", err)
	}
	m, _ := f.world.Machine("server")
	if m.Listening(5432) {
		t.Error("shutdown should stop the adopted daemon")
	}
}

func TestInstancePortsEqual(t *testing.T) {
	base := func() *spec.Instance {
		return &spec.Instance{
			ID: "x", Key: resource.MakeKey("A", "1"), Inside: "m", Machine: "m",
			Config: map[string]resource.Value{"p": resource.IntV(1)},
			Input:  map[string]resource.Value{"i": resource.Str("v")},
			Deps:   []spec.DepLink{{Class: resource.DepInside, Target: "m"}},
		}
	}
	a, b := base(), base()
	if !instancePortsEqual(a, b) {
		t.Error("identical instances should be equal")
	}
	b.Config["p"] = resource.IntV(2)
	if instancePortsEqual(a, b) {
		t.Error("config change should be detected")
	}
	c := base()
	c.Deps[0].Target = "other"
	if instancePortsEqual(a, c) {
		t.Error("link change should be detected")
	}
	d := base()
	d.Input["i"] = resource.Str("w")
	if instancePortsEqual(a, d) {
		t.Error("input change should be detected")
	}
}
