// Package upgrade implements Engage's upgrade framework (§5.2,
// "Upgrades"): given a deployed system and a new full installation
// specification, the current system is backed up, components that will
// be removed or cannot be upgraded in place are uninstalled, and the new
// system is deployed. If the upgrade fails, partially installed
// components are stopped and the old version is restored from backup.
// As the paper notes, this strategy is simple and safe but every upgrade
// pays the worst-case time.
package upgrade

import (
	"fmt"
	"sort"
	"time"

	"engage/internal/deploy"
	"engage/internal/driver"
	"engage/internal/spec"
)

// Diff classifies instances between two specifications by ID and key.
type Diff struct {
	// Added instances exist only in the new specification.
	Added []string
	// Removed instances exist only in the old specification.
	Removed []string
	// Changed instances keep their ID but change resource key
	// (a version upgrade); they are uninstalled and reinstalled.
	Changed []string
	// Kept instances are identical in ID and key.
	Kept []string
}

// Compute builds the diff between two full specifications.
func Compute(oldSpec, newSpec *spec.Full) Diff {
	oldByID := make(map[string]*spec.Instance, len(oldSpec.Instances))
	for _, inst := range oldSpec.Instances {
		oldByID[inst.ID] = inst
	}
	var d Diff
	seen := make(map[string]bool)
	for _, inst := range newSpec.Instances {
		seen[inst.ID] = true
		old, ok := oldByID[inst.ID]
		switch {
		case !ok:
			d.Added = append(d.Added, inst.ID)
		case old.Key != inst.Key:
			d.Changed = append(d.Changed, inst.ID)
		default:
			d.Kept = append(d.Kept, inst.ID)
		}
	}
	for _, inst := range oldSpec.Instances {
		if !seen[inst.ID] {
			d.Removed = append(d.Removed, inst.ID)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Changed)
	sort.Strings(d.Kept)
	return d
}

// Result reports what an upgrade did.
type Result struct {
	Diff       Diff
	RolledBack bool
	// Cause is the error that triggered rollback (nil on success).
	Cause   error
	Elapsed time.Duration
}

// Upgrader performs backup/deploy/rollback upgrades. Backups are
// deploy.MachineSnapshots — the same mechanism the FailRollback policy
// uses — so restoring a backup also kills any process the failed new
// deployment spawned (releasing its ports), not just the files.
type Upgrader struct {
	Options deploy.Options
}

// Upgrade moves a running deployment (old) to the new specification.
// On success it returns the new running deployment and a result with
// RolledBack=false. If deploying the new specification fails, the old
// system is restored from backup and redeployed, and the returned
// deployment is the restored old system with RolledBack=true; the error
// that caused the rollback is in Result.Cause (Upgrade itself returns a
// non-nil error only when rollback also fails).
func (u *Upgrader) Upgrade(old *deploy.Deployment, oldSpec, newSpec *spec.Full) (*deploy.Deployment, *Result, error) {
	res := &Result{Diff: Compute(oldSpec, newSpec)}
	clock := u.Options.World.Clock
	t0 := clock.Now()
	root := u.Options.Tracer.Span("upgrade")
	if root != nil {
		root.Int("added", int64(len(res.Diff.Added))).
			Int("removed", int64(len(res.Diff.Removed))).
			Int("changed", int64(len(res.Diff.Changed))).
			Int("kept", int64(len(res.Diff.Kept)))
	}
	finish := func(err error) {
		if root == nil {
			return
		}
		root.Bool("rolled_back", res.RolledBack)
		if err != nil {
			root.Str("error", err.Error())
		}
		root.At(t0, clock.Now()).End()
	}

	// 1. Back up the current system (filesystems + process tables).
	bsp := root.Child("upgrade.backup")
	b := deploy.SnapshotWorld(u.Options.World)
	if bsp != nil {
		bsp.Int("machines", int64(len(b))).At(t0, t0).End()
	}

	// 2. Stop the old system (reverse dependency order).
	if err := old.Shutdown(); err != nil {
		err = fmt.Errorf("upgrade: shutdown of old system failed: %w", err)
		finish(err)
		return old, res, err
	}

	// 3. Uninstall components that are removed or changed.
	toDrop := append(append([]string(nil), res.Diff.Removed...), res.Diff.Changed...)
	if err := uninstallSome(old, oldSpec, toDrop); err != nil {
		// Old system is stopped but intact: restore and restart.
		dep, r, rerr := u.rollback(old, oldSpec, b, res, err, t0)
		finish(rerr)
		return dep, r, rerr
	}

	// 4. Deploy the new system.
	newDep, err := deploy.New(newSpec, u.Options)
	if err == nil {
		err = newDep.Deploy()
	}
	if err != nil {
		if newDep != nil {
			stopAllActive(newDep)
		}
		dep, r, rerr := u.rollback(old, oldSpec, b, res, err, t0)
		finish(rerr)
		return dep, r, rerr
	}

	res.Elapsed = clock.Now().Sub(t0)
	finish(nil)
	return newDep, res, nil
}

// rollback restores the backup and redeploys the old specification.
func (u *Upgrader) rollback(old *deploy.Deployment, oldSpec *spec.Full, b deploy.MachineSnapshots, res *Result, cause error, t0 time.Time) (*deploy.Deployment, *Result, error) {
	res.RolledBack = true
	res.Cause = cause
	rsp := u.Options.Tracer.Span("upgrade.rollback")
	if rsp != nil {
		rsp.Str("cause", cause.Error())
	}
	if err := b.Restore(u.Options.World); err != nil {
		err = fmt.Errorf("upgrade: backup restore failed after %v: %w", cause, err)
		if rsp != nil {
			rsp.Str("error", err.Error()).End()
		}
		return old, res, err
	}
	restored, err := deploy.New(oldSpec, u.Options)
	if err == nil {
		err = restored.Deploy()
	}
	if err != nil {
		err = fmt.Errorf("upgrade: rollback failed after %v: %w", cause, err)
		if rsp != nil {
			rsp.Str("error", err.Error()).End()
		}
		return old, res, err
	}
	res.Elapsed = u.Options.World.Clock.Now().Sub(t0)
	rsp.End()
	return restored, res, nil
}

// uninstallSome drives the named (already stopped) instances to
// uninstalled, dependents first.
func uninstallSome(d *deploy.Deployment, full *spec.Full, ids []string) error {
	drop := make(map[string]bool, len(ids))
	for _, id := range ids {
		drop[id] = true
	}
	order, err := full.TopoOrder()
	if err != nil {
		return err
	}
	for i := len(order) - 1; i >= 0; i-- {
		inst := order[i]
		if !drop[inst.ID] {
			continue
		}
		drv, ok := d.Driver(inst.ID)
		if !ok {
			continue
		}
		path := drv.SM.PathTo(drv.State(), driver.Uninstalled)
		if path == nil {
			return fmt.Errorf("upgrade: instance %q: cannot reach uninstalled from %q", inst.ID, drv.State())
		}
		for _, a := range path {
			if err := drv.Fire(a, d); err != nil {
				return err
			}
		}
	}
	return nil
}

// stopAllActive best-effort stops every active instance of a (possibly
// partially deployed) deployment, dependents first.
func stopAllActive(d *deploy.Deployment) {
	insts := d.Instances()
	for i := len(insts) - 1; i >= 0; i-- {
		drv, ok := d.Driver(insts[i].ID)
		if !ok || drv.State() != driver.Active {
			continue
		}
		path := drv.SM.PathTo(driver.Active, driver.Inactive)
		for _, a := range path {
			if err := drv.Fire(a, d); err != nil {
				break // best effort
			}
		}
	}
}
