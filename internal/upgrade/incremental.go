package upgrade

import (
	"fmt"
	"sort"
	"time"

	"engage/internal/deploy"
	"engage/internal/driver"
	"engage/internal/spec"
)

// This file implements the incremental upgrade strategy the paper leaves
// as future work ("all upgrades using this approach experience the worst
// case upgrade time, even if there are only minor differences between
// the old and new configurations. We leave optimizations of the upgrade
// framework as future work"). Instead of stopping and redeploying the
// whole stack, only the affected subgraph — changed/removed/added
// instances plus their transitive dependents — is touched; everything
// else keeps running and is adopted by the new deployment. Ablation
// bench A5 quantifies the win.

// instancePortsEqual compares the deployment-relevant payload of two
// instances with the same ID: key, container, config, inputs, and
// dependency links. Instances that differ here must be reinstalled even
// though their key is unchanged (e.g., a changed database password).
func instancePortsEqual(a, b *spec.Instance) bool {
	if a.Key != b.Key || a.Inside != b.Inside || a.Machine != b.Machine {
		return false
	}
	if len(a.Config) != len(b.Config) || len(a.Input) != len(b.Input) {
		return false
	}
	for k, v := range a.Config {
		w, ok := b.Config[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	for k, v := range a.Input {
		w, ok := b.Input[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	if len(a.Deps) != len(b.Deps) {
		return false
	}
	for i := range a.Deps {
		if a.Deps[i].Class != b.Deps[i].Class || a.Deps[i].Target != b.Deps[i].Target {
			return false
		}
	}
	return true
}

// IncrementalPlan classifies instances for an incremental upgrade.
type IncrementalPlan struct {
	Diff Diff
	// Reconfigured instances keep their key but change ports or links.
	Reconfigured []string
	// AffectedOld are old-spec instances that must be stopped (and the
	// removed/changed ones uninstalled): the changed set plus its
	// transitive dependents.
	AffectedOld []string
	// AffectedNew are new-spec instances that must be (re)deployed.
	AffectedNew []string
	// Untouched are instances adopted as-is from the running system.
	Untouched []string
}

// PlanIncremental computes the incremental upgrade plan between two
// specifications.
func PlanIncremental(oldSpec, newSpec *spec.Full) IncrementalPlan {
	plan := IncrementalPlan{Diff: Compute(oldSpec, newSpec)}

	oldByID := make(map[string]*spec.Instance, len(oldSpec.Instances))
	for _, inst := range oldSpec.Instances {
		oldByID[inst.ID] = inst
	}
	for _, inst := range newSpec.Instances {
		if old, ok := oldByID[inst.ID]; ok && old.Key == inst.Key && !instancePortsEqual(old, inst) {
			plan.Reconfigured = append(plan.Reconfigured, inst.ID)
		}
	}
	sort.Strings(plan.Reconfigured)

	seedOld := append(append([]string(nil), plan.Diff.Removed...), plan.Diff.Changed...)
	seedOld = append(seedOld, plan.Reconfigured...)
	plan.AffectedOld = downstreamClosure(oldSpec, seedOld)

	seedNew := append(append([]string(nil), plan.Diff.Added...), plan.Diff.Changed...)
	seedNew = append(seedNew, plan.Reconfigured...)
	plan.AffectedNew = downstreamClosure(newSpec, seedNew)

	affectedNew := make(map[string]bool, len(plan.AffectedNew))
	for _, id := range plan.AffectedNew {
		affectedNew[id] = true
	}
	for _, inst := range newSpec.Instances {
		if _, existed := oldByID[inst.ID]; existed && !affectedNew[inst.ID] {
			plan.Untouched = append(plan.Untouched, inst.ID)
		}
	}
	sort.Strings(plan.Untouched)
	return plan
}

// downstreamClosure returns seed plus every transitive dependent of a
// seed instance, sorted.
func downstreamClosure(f *spec.Full, seed []string) []string {
	down := f.Downstream()
	inSet := make(map[string]bool, len(seed))
	stack := append([]string(nil), seed...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if inSet[id] {
			continue
		}
		inSet[id] = true
		stack = append(stack, down[id]...)
	}
	out := make([]string, 0, len(inSet))
	for id := range inSet {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// UpgradeIncremental performs an incremental upgrade: only the affected
// subgraph is stopped, swapped, and restarted; unaffected instances keep
// running and are adopted by the returned deployment. On failure the
// whole system is restored from backup and the old specification
// redeployed in full (the rare path pays the worst case, as in the
// baseline strategy).
func (u *Upgrader) UpgradeIncremental(old *deploy.Deployment, oldSpec, newSpec *spec.Full) (*deploy.Deployment, *Result, error) {
	plan := PlanIncremental(oldSpec, newSpec)
	res := &Result{Diff: plan.Diff}
	clock := u.Options.World.Clock
	t0 := clock.Now()

	b := deploy.SnapshotWorld(u.Options.World)

	// Stop only the affected subgraph, dependents first. The closure
	// guarantees no unaffected instance depends on a stopping one, so
	// the ↓inactive guards stay satisfiable.
	if err := stopSome(old, oldSpec, plan.AffectedOld); err != nil {
		return u.rollbackIncremental(old, oldSpec, b, res, err, t0)
	}

	// Uninstall what is leaving or changing key.
	toDrop := append(append([]string(nil), plan.Diff.Removed...), plan.Diff.Changed...)
	if err := uninstallSome(old, oldSpec, toDrop); err != nil {
		return u.rollbackIncremental(old, oldSpec, b, res, err, t0)
	}

	// Build the new deployment, adopt the untouched instances, and let
	// Deploy drive only the affected ones.
	newDep, err := deploy.New(newSpec, u.Options)
	if err == nil {
		err = newDep.Adopt(old, plan.Untouched)
	}
	if err == nil {
		err = newDep.Deploy()
	}
	if err != nil {
		if newDep != nil {
			stopAllActive(newDep)
		}
		stopAllActive(old)
		return u.rollbackIncremental(old, oldSpec, b, res, err, t0)
	}
	res.Elapsed = clock.Now().Sub(t0)
	return newDep, res, nil
}

// rollbackIncremental stops whatever of the old system is still running
// (releasing ports), then restores the backup and redeploys the old
// specification in full — the rare failure path pays the worst case.
func (u *Upgrader) rollbackIncremental(old *deploy.Deployment, oldSpec *spec.Full, b deploy.MachineSnapshots, res *Result, cause error, t0 time.Time) (*deploy.Deployment, *Result, error) {
	stopAllActive(old)
	return u.rollback(old, oldSpec, b, res, cause, t0)
}

// stopSome drives the named instances (those currently active) to
// inactive, dependents first.
func stopSome(d *deploy.Deployment, full *spec.Full, ids []string) error {
	target := make(map[string]bool, len(ids))
	for _, id := range ids {
		target[id] = true
	}
	order, err := full.TopoOrder()
	if err != nil {
		return err
	}
	for i := len(order) - 1; i >= 0; i-- {
		inst := order[i]
		if !target[inst.ID] {
			continue
		}
		drv, ok := d.Driver(inst.ID)
		if !ok || drv.State() != driver.Active {
			continue
		}
		path := drv.SM.PathTo(driver.Active, driver.Inactive)
		if path == nil {
			return fmt.Errorf("upgrade: instance %q: no path to inactive", inst.ID)
		}
		for _, a := range path {
			if err := drv.Fire(a, d); err != nil {
				return err
			}
		}
	}
	return nil
}
