package fault

// This file makes health degradation a first-class injectable fault.
// Where a DriftRule mutates an instance's recorded state (dead daemon,
// corrupt manifest), a SicknessRule leaves the daemon running and
// instead makes it *sick*: the health subsystem's synthetic "check"
// probe (health.CheckSource) starts reporting failure, which is exactly
// the running-but-unhealthy case process and port checks cannot see.
// Sickness decisions come from the same seeded PRNG and event log as
// every other rule, so sickness schedules are reproducible and
// traceable.
//
// A sickness is keyed to the daemon PID observed at injection time:
// replacing the daemon (the reconciler's repair) cures it. Brownouts
// additionally self-heal after their duration, exercising the
// Unhealthy → Recovering → Healthy path without any repair.

import (
	"fmt"
	"sort"
	"time"

	"engage/internal/machine"
)

// SickKind selects how an injected sickness behaves over virtual time.
type SickKind int

// Sickness kinds.
const (
	// SickAny lets the plan's PRNG pick a concrete kind per firing
	// (only in rules, never in results).
	SickAny SickKind = iota
	// SickPersistent fails every check until the daemon is replaced.
	SickPersistent
	// SickFlap fails checks for Period of virtual time, passes exactly
	// one check, then falls sick again — the oscillation the health
	// state machine's flap damping exists for.
	SickFlap
	// SickBrownout fails checks for Duration of virtual time, then
	// self-heals (no repair needed).
	SickBrownout
)

func (k SickKind) String() string {
	switch k {
	case SickAny:
		return "any"
	case SickPersistent:
		return "persistent-sick"
	case SickFlap:
		return "flap"
	case SickBrownout:
		return "brownout"
	default:
		return fmt.Sprintf("sick(%d)", int(k))
	}
}

// Injectable sickness operation kinds, stamped on the plan's event log
// and "fault.inject" trace events.
const (
	OpSickPersistent machine.OpKind = "sick-persistent"
	OpSickFlap       machine.OpKind = "sick-flap"
	OpSickBrownout   machine.OpKind = "sick-brownout"
)

func (k SickKind) op() machine.OpKind {
	switch k {
	case SickPersistent:
		return OpSickPersistent
	case SickFlap:
		return OpSickFlap
	default:
		return OpSickBrownout
	}
}

// SicknessRule matches deployed instances and decides sickness
// injections for them. Machine and Instance are path.Match globs (""
// matches anything); Kind SickAny draws a concrete kind from the plan's
// PRNG per firing. Modes carry the failure-rule semantics.
type SicknessRule struct {
	Kind     SickKind
	Machine  string
	Instance string
	Mode     Mode
	Times    int
	Prob     float64
	// Period is SickFlap's sick-phase length (default 2 minutes).
	Period time.Duration
	// Duration is SickBrownout's length (default 2 minutes).
	Duration time.Duration

	fired int
}

// sickness is one active injected sickness.
type sickness struct {
	kind SickKind
	// pid is the daemon observed at injection; a different PID on a
	// later check means the daemon was replaced, which cures.
	pid   int
	start time.Time
	// period / duration carry the rule's timing knobs.
	period   time.Duration
	duration time.Duration
}

// AddSickness appends a sickness rule and returns the plan for
// chaining.
func (p *Plan) AddSickness(r SicknessRule) *Plan {
	p.mu.Lock()
	p.sickRules = append(p.sickRules, &r)
	p.mu.Unlock()
	return p
}

// SickenPersistent makes every matching instance persistently sick on
// injection — only replacement cures.
func (p *Plan) SickenPersistent(machinePat, instancePat string) *Plan {
	return p.AddSickness(SicknessRule{Kind: SickPersistent, Machine: machinePat, Instance: instancePat, Mode: Persistent})
}

// SickenFlap makes matching instances flap: sick for period, one
// passing check, sick again.
func (p *Plan) SickenFlap(machinePat, instancePat string, period time.Duration) *Plan {
	return p.AddSickness(SicknessRule{Kind: SickFlap, Machine: machinePat, Instance: instancePat, Mode: Persistent, Period: period})
}

// SickenBrownout makes matching instances sick for duration, then
// self-heal.
func (p *Plan) SickenBrownout(machinePat, instancePat string, duration time.Duration) *Plan {
	return p.AddSickness(SicknessRule{Kind: SickBrownout, Machine: machinePat, Instance: instancePat, Mode: Persistent, Duration: duration})
}

// SickenWithProbability injects a PRNG-chosen sickness into each
// offered target independently with probability prob.
func (p *Plan) SickenWithProbability(prob float64) *Plan {
	return p.AddSickness(SicknessRule{Kind: SickAny, Mode: Probabilistic, Prob: prob})
}

// InjectSickness consults the sickness rules for one deployed instance
// and, when a rule fires, marks the instance sick from now (a virtual
// timestamp — the plan has no clock of its own) until cured. The
// target's daemon must be alive: sickness is a property of a running
// process. Already-sick instances are left alone.
func (p *Plan) InjectSickness(t DriftTarget, now time.Time) (SickKind, bool) {
	if t.PID == 0 || t.Machine == nil || !t.Machine.Running(t.PID) {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sick == nil {
		p.sick = make(map[string]*sickness)
	}
	if _, already := p.sick[t.Instance]; already {
		return 0, false
	}
	for i, r := range p.sickRules {
		if !globMatch(r.Machine, machineName(t)) || !globMatch(r.Instance, t.Instance) {
			continue
		}
		switch r.Mode {
		case Transient:
			if r.fired >= r.Times {
				continue
			}
		case Probabilistic:
			if p.rng.Float64() >= r.Prob {
				continue
			}
		}
		kind := r.Kind
		if kind == SickAny {
			kind = []SickKind{SickPersistent, SickFlap, SickBrownout}[p.rng.Intn(3)]
		}
		period, duration := r.Period, r.Duration
		if period <= 0 {
			period = 2 * time.Minute
		}
		if duration <= 0 {
			duration = 2 * time.Minute
		}
		r.fired++
		p.sick[t.Instance] = &sickness{kind: kind, pid: t.PID, start: now, period: period, duration: duration}
		op := machine.Op{Kind: kind.op(), Machine: machineName(t), Name: t.Instance}
		p.events = append(p.events, Event{Op: op, Rule: i})
		p.emitSickLocked(op, i, r.Mode)
		return kind, true
	}
	return 0, false
}

// emitSickLocked traces one sickness injection; caller holds p.mu.
func (p *Plan) emitSickLocked(op machine.Op, rule int, mode Mode) {
	if p.tracer == nil {
		return
	}
	p.tracer.Event("fault.inject").
		Str("plan", p.id).Int("rule", int64(rule)).Str("mode", mode.String()).
		Str("op", string(op.Kind)).Str("machine", op.Machine).Str("name", op.Name).
		Str("effect", "sicken").
		Emit()
}

// HealthCheck implements the health subsystem's CheckSource: the
// synthetic "check" probe asks the fault plan whether the instance is
// sick at the given virtual time. A check against a PID different from
// the one recorded at injection means the daemon was replaced, which
// cures any sickness kind.
func (p *Plan) HealthCheck(instance string, pid int, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.sick[instance]
	if !ok {
		return true
	}
	if pid != 0 && s.pid != 0 && pid != s.pid {
		delete(p.sick, instance) // replaced daemon: cured
		return true
	}
	switch s.kind {
	case SickPersistent:
		return false
	case SickFlap:
		if now.Sub(s.start) >= s.period {
			// One passing check, then the sick phase restarts.
			s.start = now
			return true
		}
		return false
	case SickBrownout:
		if now.Sub(s.start) >= s.duration {
			delete(p.sick, instance) // self-healed
			return true
		}
		return false
	default:
		return true
	}
}

// Sickened lists the instances currently sick, sorted.
func (p *Plan) Sickened() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.sick))
	for id := range p.sick {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
