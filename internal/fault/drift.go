package fault

// This file makes configuration drift a first-class injectable fault.
// A DriftRule does not fail a substrate operation the way the failure
// rules do: it mutates a *deployed* instance's recorded state in place
// — killing its daemon, corrupting its recorded config manifest, or
// moving its process off the recorded port binding — the disturbances a
// reconciler must detect and repair. Drift decisions come from the same
// seeded PRNG and event log as every other rule, so drift schedules are
// reproducible and traceable.

import (
	"fmt"
	"time"

	"engage/internal/machine"
)

// DriftKind selects what a drift injection mutates.
type DriftKind int

// Drift kinds.
const (
	// DriftAny lets the plan's PRNG pick one of the concrete kinds
	// applicable to the target (only in rules, never in results).
	DriftAny DriftKind = iota
	// DriftKill kills the instance's recorded daemon process.
	DriftKill
	// DriftConfig corrupts the instance's recorded config manifest.
	DriftConfig
	// DriftPort kills the daemon and respawns a same-name process that
	// is not listening on the recorded ports.
	DriftPort
)

func (k DriftKind) String() string {
	switch k {
	case DriftAny:
		return "any"
	case DriftKill:
		return "kill"
	case DriftConfig:
		return "config"
	case DriftPort:
		return "port"
	default:
		return fmt.Sprintf("drift(%d)", int(k))
	}
}

// Injectable drift operation kinds, stamped on the plan's event log and
// "fault.inject" trace events.
const (
	OpDriftKill   machine.OpKind = "drift-kill"
	OpDriftConfig machine.OpKind = "drift-config"
	OpDriftPort   machine.OpKind = "drift-port"
)

func (k DriftKind) op() machine.OpKind {
	switch k {
	case DriftKill:
		return OpDriftKill
	case DriftConfig:
		return OpDriftConfig
	default:
		return OpDriftPort
	}
}

// DriftRule matches deployed instances and decides drift injections for
// them. Machine and Instance are path.Match globs ("" matches
// anything); Kind DriftAny draws a concrete kind from the plan's PRNG
// per firing. Modes carry the failure-rule semantics: Transient fires
// the first Times matches, Persistent every match, Probabilistic each
// match with probability Prob.
type DriftRule struct {
	Kind     DriftKind
	Machine  string
	Instance string
	Mode     Mode
	Times    int
	Prob     float64

	fired int
}

// DriftTarget describes one deployed instance's recorded state — the
// binding a stack layer wrote down at apply time — as the drift
// injector needs it. Zero/empty fields limit what kinds apply: an
// instance with no daemon (PID 0) can only suffer config drift.
type DriftTarget struct {
	Instance string
	Machine  *machine.Machine
	// ManifestPath is the recorded config manifest file on Machine.
	ManifestPath string
	// PID, ProcName, and Command identify the recorded daemon.
	PID      int
	ProcName string
	Command  string
}

// AddDrift appends a drift rule and returns the plan for chaining.
func (p *Plan) AddDrift(r DriftRule) *Plan {
	p.mu.Lock()
	p.driftRules = append(p.driftRules, &r)
	p.mu.Unlock()
	return p
}

// DriftWithProbability injects a PRNG-chosen drift into each offered
// target independently with probability prob.
func (p *Plan) DriftWithProbability(prob float64) *Plan {
	return p.AddDrift(DriftRule{Kind: DriftAny, Mode: Probabilistic, Prob: prob})
}

// kindsFor lists the concrete kinds applicable to a target: config
// drift needs a recorded manifest, process kinds need a live daemon.
func kindsFor(t DriftTarget) []DriftKind {
	var kinds []DriftKind
	if t.PID != 0 && t.Machine != nil && t.Machine.Running(t.PID) {
		kinds = append(kinds, DriftKill, DriftPort)
	}
	if t.ManifestPath != "" && t.Machine != nil {
		kinds = append(kinds, DriftConfig)
	}
	return kinds
}

// InjectDrift consults the drift rules for one deployed instance and,
// when a rule fires, mutates the target's recorded state in place,
// returning the kind applied. The decision — including the PRNG draw
// for DriftAny — is made under the plan's lock and logged like any
// other injection; the mutation itself runs unlocked, because substrate
// operations (WriteFile, StartProcess) consult the injector and must
// not re-enter it.
func (p *Plan) InjectDrift(t DriftTarget) (DriftKind, bool) {
	kind, ok := p.decideDrift(t)
	if !ok {
		return 0, false
	}
	// Best-effort mutation: a failure rule may refuse the drift's own
	// substrate operation. The decision is logged either way, so the
	// schedule stays reproducible; an unapplied drift simply leaves
	// nothing for the detector to find.
	_ = p.applyDrift(t, kind)
	return kind, true
}

// decideDrift picks the first firing drift rule and concrete kind for a
// target, under the plan's lock.
func (p *Plan) decideDrift(t DriftTarget) (DriftKind, bool) {
	applicable := kindsFor(t)
	if len(applicable) == 0 {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, r := range p.driftRules {
		if !globMatch(r.Machine, machineName(t)) || !globMatch(r.Instance, t.Instance) {
			continue
		}
		kind := r.Kind
		switch r.Mode {
		case Transient:
			if r.fired >= r.Times {
				continue
			}
		case Probabilistic:
			if p.rng.Float64() >= r.Prob {
				continue
			}
		}
		if kind == DriftAny {
			kind = applicable[p.rng.Intn(len(applicable))]
		} else if !contains(applicable, kind) {
			continue
		}
		r.fired++
		op := machine.Op{Kind: kind.op(), Machine: machineName(t), Name: t.Instance}
		p.events = append(p.events, Event{Op: op, Rule: i})
		p.emitDriftLocked(op, i, r.Mode)
		return kind, true
	}
	return 0, false
}

// emitDriftLocked traces one drift injection; caller holds p.mu.
func (p *Plan) emitDriftLocked(op machine.Op, rule int, mode Mode) {
	if p.tracer == nil {
		return
	}
	p.tracer.Event("fault.inject").
		Str("plan", p.id).Int("rule", int64(rule)).Str("mode", mode.String()).
		Str("op", string(op.Kind)).Str("machine", op.Machine).Str("name", op.Name).
		Str("effect", "drift").
		Emit()
}

// applyDrift performs the decided mutation. Runs without the plan lock.
func (p *Plan) applyDrift(t DriftTarget, kind DriftKind) error {
	switch kind {
	case DriftKill:
		return t.Machine.KillProcess(t.PID)
	case DriftConfig:
		return t.Machine.WriteFile(t.ManifestPath,
			fmt.Sprintf("# drifted by %s at %s\n", p.ID(), t.Machine.Clock().Now().Format(time.RFC3339)))
	case DriftPort:
		if err := t.Machine.KillProcess(t.PID); err != nil {
			return err
		}
		// Respawn the daemon's name with no port claims: the recorded
		// binding now points at a process that is not serving its port.
		_, err := t.Machine.StartProcess(t.ProcName, t.Command)
		return err
	default:
		return fmt.Errorf("fault: unknown drift kind %v", kind)
	}
}

func machineName(t DriftTarget) string {
	if t.Machine == nil {
		return ""
	}
	return t.Machine.Name
}

func contains(ks []DriftKind, k DriftKind) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}
