package fault

import (
	"testing"
	"time"
)

func TestSickenPersistentUntilReplaced(t *testing.T) {
	m, tgt := driftTarget(t)
	clock := m.Clock()
	plan := NewPlan(1).SickenPersistent("", "")

	kind, ok := plan.InjectSickness(tgt, clock.Now())
	if !ok || kind != SickPersistent {
		t.Fatalf("InjectSickness = %v, %v", kind, ok)
	}
	if !m.Running(tgt.PID) {
		t.Fatal("sickness must not kill the daemon")
	}
	// Sick indefinitely under the same PID.
	for i := 0; i < 5; i++ {
		clock.Advance(time.Hour)
		if plan.HealthCheck("app", tgt.PID, clock.Now()) {
			t.Fatalf("persistent sickness healed by itself at +%dh", i+1)
		}
	}
	if got := plan.Sickened(); len(got) != 1 || got[0] != "app" {
		t.Errorf("Sickened = %v", got)
	}
	// A replaced daemon (new PID) cures.
	if !plan.HealthCheck("app", tgt.PID+100, clock.Now()) {
		t.Error("replacement should cure")
	}
	if len(plan.Sickened()) != 0 {
		t.Error("cured sickness should be dropped")
	}
	// And stays cured.
	if !plan.HealthCheck("app", tgt.PID+100, clock.Now()) {
		t.Error("cured instance should stay healthy")
	}
	evs := plan.Events()
	if len(evs) != 1 || evs[0].Op.Kind != OpSickPersistent || evs[0].Op.Name != "app" {
		t.Errorf("event log = %+v", evs)
	}
}

func TestSickenFlapPassesOneCheckPerPeriod(t *testing.T) {
	m, tgt := driftTarget(t)
	clock := m.Clock()
	plan := NewPlan(1).SickenFlap("", "", 90*time.Second)
	if kind, ok := plan.InjectSickness(tgt, clock.Now()); !ok || kind != SickFlap {
		t.Fatalf("InjectSickness = %v, %v", kind, ok)
	}
	// Checks every 30s: sick for the whole 90s period...
	for i := 0; i < 3; i++ {
		if plan.HealthCheck("app", tgt.PID, clock.Now()) {
			t.Fatalf("check %d should be sick", i)
		}
		clock.Advance(30 * time.Second)
	}
	// ...then exactly one passing check (the flap's healthy blip)...
	if !plan.HealthCheck("app", tgt.PID, clock.Now()) {
		t.Fatal("check at period boundary should pass")
	}
	// ...and the sick phase restarts immediately.
	clock.Advance(30 * time.Second)
	if plan.HealthCheck("app", tgt.PID, clock.Now()) {
		t.Error("flap should be sick again after the blip")
	}
	if len(plan.Sickened()) != 1 {
		t.Error("flap never self-heals")
	}
}

func TestSickenBrownoutSelfHeals(t *testing.T) {
	m, tgt := driftTarget(t)
	clock := m.Clock()
	plan := NewPlan(1).SickenBrownout("", "", 2*time.Minute)
	if kind, ok := plan.InjectSickness(tgt, clock.Now()); !ok || kind != SickBrownout {
		t.Fatalf("InjectSickness = %v, %v", kind, ok)
	}
	clock.Advance(time.Minute)
	if plan.HealthCheck("app", tgt.PID, clock.Now()) {
		t.Fatal("mid-brownout check should be sick")
	}
	clock.Advance(time.Minute)
	if !plan.HealthCheck("app", tgt.PID, clock.Now()) {
		t.Fatal("expired brownout should self-heal")
	}
	if len(plan.Sickened()) != 0 {
		t.Error("self-healed sickness should be dropped")
	}
}

func TestSicknessNeedsLiveDaemon(t *testing.T) {
	m, tgt := driftTarget(t)
	clock := m.Clock()
	plan := NewPlan(1).SickenPersistent("", "")
	if err := m.KillProcess(tgt.PID); err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.InjectSickness(tgt, clock.Now()); ok {
		t.Error("sickness must not fire on a dead daemon")
	}
	passive := tgt
	passive.PID = 0
	if _, ok := plan.InjectSickness(passive, clock.Now()); ok {
		t.Error("sickness must not fire on a passive target")
	}
	if plan.Injections() != 0 {
		t.Errorf("no injections expected, got %d", plan.Injections())
	}
}

func TestSicknessDoubleInjectionIsIdempotent(t *testing.T) {
	m, tgt := driftTarget(t)
	clock := m.Clock()
	plan := NewPlan(1).SickenPersistent("", "")
	if _, ok := plan.InjectSickness(tgt, clock.Now()); !ok {
		t.Fatal("first injection should fire")
	}
	if _, ok := plan.InjectSickness(tgt, clock.Now()); ok {
		t.Error("already-sick instance must not be re-injected")
	}
	if plan.Injections() != 1 {
		t.Errorf("injections = %d, want 1", plan.Injections())
	}
	_ = m
}

func TestSicknessRuleGlobsAndModes(t *testing.T) {
	_, tgt := driftTarget(t)
	clock := tgt.Machine.Clock()
	scoped := NewPlan(1).AddSickness(SicknessRule{Kind: SickPersistent, Mode: Persistent, Instance: "db-*"})
	if _, ok := scoped.InjectSickness(tgt, clock.Now()); ok {
		t.Error("non-matching instance glob should not fire")
	}
	tgt2 := tgt
	tgt2.Instance = "db-1"
	if _, ok := scoped.InjectSickness(tgt2, clock.Now()); !ok {
		t.Error("matching instance glob should fire")
	}

	transient := NewPlan(1).AddSickness(SicknessRule{Kind: SickBrownout, Mode: Transient, Times: 1})
	if _, ok := transient.InjectSickness(tgt, clock.Now()); !ok {
		t.Fatal("transient rule should fire once")
	}
	other := tgt
	other.Instance = "other"
	if _, ok := transient.InjectSickness(other, clock.Now()); ok {
		t.Error("transient rule should stop after Times firings")
	}
}

// TestSicknessScheduleReproducible replays a probabilistic sickness
// schedule and demands the identical decision sequence.
func TestSicknessScheduleReproducible(t *testing.T) {
	run := func() []Event {
		m, tgt := driftTarget(t)
		clock := m.Clock()
		plan := NewPlan(42).SickenWithProbability(0.5)
		for i := 0; i < 20; i++ {
			tgt.Instance = []string{"a", "b", "c", "d"}[i%4]
			plan.InjectSickness(tgt, clock.Now())
			clock.Advance(time.Second)
		}
		return plan.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("sickness schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Op.Kind != b[i].Op.Kind || a[i].Op.Name != b[i].Op.Name {
			t.Errorf("injection %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
