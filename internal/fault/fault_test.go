package fault

import (
	"errors"
	"testing"
	"time"

	"engage/internal/machine"
)

func world(t *testing.T) (*machine.World, *machine.Machine) {
	t.Helper()
	w := machine.NewWorld()
	m, err := w.AddMachine("web-1", "linux")
	if err != nil {
		t.Fatal(err)
	}
	return w, m
}

func TestTransientFailsExactlyNTimes(t *testing.T) {
	w, m := world(t)
	plan := NewPlan(1).FailTransient(machine.OpWriteFile, "", "/etc/*", 2)
	w.SetInjector(plan)

	for i := 0; i < 2; i++ {
		if err := m.WriteFile("/etc/app.conf", "x"); err == nil {
			t.Fatalf("write %d should fail", i+1)
		}
	}
	if err := m.WriteFile("/etc/app.conf", "x"); err != nil {
		t.Fatalf("third write should succeed: %v", err)
	}
	if got := plan.Injections(); got != 2 {
		t.Errorf("Injections() = %d, want 2", got)
	}
	// Paths outside the glob are untouched.
	if err := m.WriteFile("/var/log/app", "y"); err != nil {
		t.Errorf("non-matching path failed: %v", err)
	}
}

func TestPersistentFailsForever(t *testing.T) {
	w, m := world(t)
	w.SetInjector(NewPlan(1).FailPersistent(machine.OpStartProcess, "", "mysqld"))

	for i := 0; i < 5; i++ {
		if _, err := m.StartProcess("mysqld", "mysqld"); err == nil {
			t.Fatalf("start %d should fail", i+1)
		}
	}
	if _, err := m.StartProcess("tomcat", "catalina"); err != nil {
		t.Errorf("non-matching process failed: %v", err)
	}
}

func TestInjectedErrorIsTyped(t *testing.T) {
	w, m := world(t)
	w.SetInjector(NewPlan(1).FailPersistent(machine.OpWriteFile, "", ""))
	err := m.WriteFile("/x", "y")
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("error chain should carry *fault.Error, got %v", err)
	}
	if fe.Op.Kind != machine.OpWriteFile || fe.Op.Machine != "web-1" {
		t.Errorf("fault error op = %+v", fe.Op)
	}
}

func TestMachineGlobScopesRules(t *testing.T) {
	w, m1 := world(t)
	m2, err := w.AddMachine("db-1", "linux")
	if err != nil {
		t.Fatal(err)
	}
	w.SetInjector(NewPlan(1).FailPersistent(machine.OpWriteFile, "web-*", ""))

	if err := m1.WriteFile("/a", "x"); err == nil {
		t.Error("web-1 write should fail")
	}
	if err := m2.WriteFile("/a", "x"); err != nil {
		t.Errorf("db-1 write should pass: %v", err)
	}
}

func TestCrashAfterSchedulesDeath(t *testing.T) {
	w, m := world(t)
	w.SetInjector(NewPlan(1).CrashAfter("", "daemon", 5*time.Second))

	p, err := m.StartProcess("daemon", "daemond", 9000)
	if err != nil {
		t.Fatalf("crash rules must not fail the start: %v", err)
	}
	w.Clock.Advance(4 * time.Second)
	if !m.Running(p.PID) {
		t.Fatal("process should still run before the crash delay")
	}
	w.Clock.Advance(2 * time.Second)
	if m.Running(p.PID) {
		t.Fatal("process should be dead after the crash delay")
	}
	if m.Listening(9000) {
		t.Error("crash should release claimed ports")
	}
	status, killed, ok := m.ExitInfo(p.PID)
	if !ok || !killed || status == 0 {
		t.Errorf("ExitInfo = (%d, %v, %v), want non-zero killed exit", status, killed, ok)
	}
}

func TestProbabilisticIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		w, m := world(t)
		w.SetInjector(NewPlan(seed).FailWithProbability(machine.OpWriteFile, "", "", 0.5))
		var outcomes []bool
		for i := 0; i < 32; i++ {
			outcomes = append(outcomes, m.WriteFile("/f", "x") != nil)
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should (overwhelmingly) differ over 32 draws")
	}
}

func TestChaosPlanCoversAllOps(t *testing.T) {
	// With probability 1 every operation kind fails.
	w, m := world(t)
	w.SetInjector(Chaos(7, 1.0, 0))
	if err := m.WriteFile("/f", "x"); err == nil {
		t.Error("chaos write should fail")
	}
	if _, err := m.StartProcess("d", "d"); err == nil {
		t.Error("chaos start should fail")
	}
	if m.Connect("web-1", 80) {
		t.Error("chaos connect should fail")
	}
}
