// Package fault is Engage's deterministic fault-injection substrate: a
// seeded, reproducible Plan of injectable failures wired into the
// simulated machine world through the machine.Injector hook. Every
// failure mode the deployment engine must survive — transient and
// persistent process-spawn and file-write errors, processes that crash
// after N virtual seconds, flaky network connects, package-install
// failures, provisioning failures — is scriptable here, so robustness
// tests replay the exact same fault schedule on every run (explicit
// rules) or explore a randomized but repeatable schedule (seeded PRNG).
package fault

import (
	"fmt"
	"math/rand"
	"path"
	"sync"
	"time"

	"engage/internal/machine"
	"engage/internal/telemetry"
)

// Mode selects how a rule fires.
type Mode int

// Rule firing modes.
const (
	// Transient rules fail the first Times matching operations, then
	// stop firing (the retry policy should absorb them).
	Transient Mode = iota
	// Persistent rules fail every matching operation.
	Persistent
	// Probabilistic rules fail each matching operation independently
	// with probability Prob, drawn from the plan's seeded PRNG.
	Probabilistic
)

func (m Mode) String() string {
	switch m {
	case Transient:
		return "transient"
	case Persistent:
		return "persistent"
	case Probabilistic:
		return "probabilistic"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Rule matches a class of substrate operations and decides failures for
// it. Machine and Name are path.Match globs ("" matches anything); Op
// "" matches every operation kind. A rule with Crash > 0 does not fail
// the operation: it schedules the started process to crash after Crash
// of virtual time (only meaningful for OpStartProcess).
type Rule struct {
	Op      machine.OpKind
	Machine string
	Name    string
	Mode    Mode
	// Times bounds Transient failures.
	Times int
	// Prob is the per-operation failure probability for Probabilistic.
	Prob float64
	// Crash schedules a process crash after this much virtual time
	// instead of failing the start.
	Crash time.Duration

	fired int // failures injected so far
}

func (r *Rule) matches(op machine.Op) bool {
	if r.Op != "" && r.Op != op.Kind {
		return false
	}
	return globMatch(r.Machine, op.Machine) && globMatch(r.Name, op.Name)
}

func globMatch(pat, s string) bool {
	if pat == "" || pat == "*" {
		return true
	}
	ok, err := path.Match(pat, s)
	return err == nil && ok
}

// Event records one injected failure (or scheduled crash), for reports
// and assertions.
type Event struct {
	Op machine.Op
	// Rule is the index of the rule that fired.
	Rule int
	// Crash is non-zero when the event scheduled a delayed crash rather
	// than failing the operation.
	Crash time.Duration
}

// Error is the error returned for injected failures; deployment errors
// wrap it, so tests can errors.As through retry and rollback layers.
type Error struct {
	Op   machine.Op
	Mode Mode
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s failure: %s", e.Mode, e.Op)
}

// Plan is a deterministic schedule of injectable failures implementing
// machine.Injector. Rules are consulted in order; the first one that
// fires decides the operation. A Plan is safe for concurrent use.
type Plan struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []*Rule
	// driftRules are consulted only by InjectDrift (see drift.go) —
	// they mutate deployed state rather than failing operations.
	driftRules []*DriftRule
	// sickRules and sick are the health-degradation schedule (see
	// sickness.go): active sicknesses answer HealthCheck.
	sickRules []*SicknessRule
	sick      map[string]*sickness
	events    []Event
	id        string
	tracer    *telemetry.Tracer
}

// NewPlan returns an empty plan whose probabilistic rules draw from a
// PRNG with the given seed; the same seed and operation sequence yield
// the same failures. The plan's identity defaults to "plan-<seed>" so
// trace events name which fault schedule fired.
func NewPlan(seed int64) *Plan {
	return &Plan{rng: rand.New(rand.NewSource(seed)), id: fmt.Sprintf("plan-%d", seed)}
}

// ID returns the plan's identity as stamped on trace events.
func (p *Plan) ID() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.id
}

// SetID overrides the plan's identity; returns the plan for chaining.
func (p *Plan) SetID(id string) *Plan {
	p.mu.Lock()
	p.id = id
	p.mu.Unlock()
	return p
}

// Instrument emits a "fault.inject" trace event for every injection
// (failed operation or scheduled crash); returns the plan for chaining.
// The tracer's mutex is a leaf lock, so emission under the plan's own
// lock is safe.
func (p *Plan) Instrument(tr *telemetry.Tracer) *Plan {
	p.mu.Lock()
	p.tracer = tr
	p.mu.Unlock()
	return p
}

// emitLocked traces one injection; caller holds p.mu.
func (p *Plan) emitLocked(op machine.Op, rule int, mode Mode, crash time.Duration) {
	if p.tracer == nil {
		return
	}
	ev := p.tracer.Event("fault.inject").
		Str("plan", p.id).Int("rule", int64(rule)).Str("mode", mode.String()).
		Str("op", string(op.Kind)).Str("machine", op.Machine).Str("name", op.Name)
	if op.Port != 0 {
		ev.Int("port", int64(op.Port))
	}
	if crash > 0 {
		ev.Str("effect", "crash").Dur("crash_after", crash)
	} else {
		ev.Str("effect", "fail")
	}
	ev.Emit()
}

// Add appends a rule and returns the plan for chaining.
func (p *Plan) Add(r Rule) *Plan {
	p.mu.Lock()
	p.rules = append(p.rules, &r)
	p.mu.Unlock()
	return p
}

// FailTransient fails the first times matching operations, then lets
// them succeed — a fault a retry policy should absorb.
func (p *Plan) FailTransient(op machine.OpKind, machinePat, namePat string, times int) *Plan {
	return p.Add(Rule{Op: op, Machine: machinePat, Name: namePat, Mode: Transient, Times: times})
}

// FailPersistent fails every matching operation — a fault only rollback
// can answer.
func (p *Plan) FailPersistent(op machine.OpKind, machinePat, namePat string) *Plan {
	return p.Add(Rule{Op: op, Machine: machinePat, Name: namePat, Mode: Persistent})
}

// FailWithProbability fails each matching operation independently with
// probability prob, drawn from the plan's seeded PRNG.
func (p *Plan) FailWithProbability(op machine.OpKind, machinePat, namePat string, prob float64) *Plan {
	return p.Add(Rule{Op: op, Machine: machinePat, Name: namePat, Mode: Probabilistic, Prob: prob})
}

// CrashAfter schedules matching processes to crash after d of virtual
// time once started.
func (p *Plan) CrashAfter(machinePat, namePat string, d time.Duration) *Plan {
	return p.Add(Rule{Op: machine.OpStartProcess, Machine: machinePat, Name: namePat, Mode: Persistent, Crash: d})
}

// Inject implements machine.Injector: the first matching failure rule
// that fires fails the operation with an *Error.
func (p *Plan) Inject(op machine.Op) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, r := range p.rules {
		if r.Crash > 0 || !r.matches(op) {
			continue
		}
		switch r.Mode {
		case Transient:
			if r.fired >= r.Times {
				continue
			}
		case Probabilistic:
			if p.rng.Float64() >= r.Prob {
				continue
			}
		}
		r.fired++
		p.events = append(p.events, Event{Op: op, Rule: i})
		p.emitLocked(op, i, r.Mode, 0)
		return &Error{Op: op, Mode: r.Mode}
	}
	return nil
}

// CrashDelay implements machine.Injector: the first matching crash rule
// that fires schedules the new process's death.
func (p *Plan) CrashDelay(op machine.Op) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, r := range p.rules {
		if r.Crash <= 0 || !r.matches(op) {
			continue
		}
		switch r.Mode {
		case Transient:
			if r.fired >= r.Times {
				continue
			}
		case Probabilistic:
			if p.rng.Float64() >= r.Prob {
				continue
			}
		}
		r.fired++
		p.events = append(p.events, Event{Op: op, Rule: i, Crash: r.Crash})
		p.emitLocked(op, i, r.Mode, r.Crash)
		return r.Crash
	}
	return 0
}

// Injections reports how many faults the plan has injected so far.
func (p *Plan) Injections() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.events)
}

// Events returns the injected-fault log in injection order.
func (p *Plan) Events() []Event {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...)
}

// Chaos builds a randomized but reproducible plan for soak tests: every
// process spawn, file write, package install, and connect fails
// independently with probability prob, and started processes crash
// after crashAfter of virtual time with the same probability (pass 0 to
// disable crashes). Same seed, same world activity, same faults.
func Chaos(seed int64, prob float64, crashAfter time.Duration) *Plan {
	p := NewPlan(seed)
	p.FailWithProbability(machine.OpStartProcess, "", "", prob)
	p.FailWithProbability(machine.OpWriteFile, "", "", prob)
	p.FailWithProbability(machine.OpPkgInstall, "", "", prob)
	p.FailWithProbability(machine.OpConnect, "", "", prob)
	if crashAfter > 0 {
		p.Add(Rule{Op: machine.OpStartProcess, Mode: Probabilistic, Prob: prob, Crash: crashAfter})
	}
	return p
}

var _ machine.Injector = (*Plan)(nil)
