package fault

import (
	"strings"
	"testing"

	"engage/internal/machine"
)

// driftTarget deploys a fake recorded binding on a fresh machine: a
// daemon on a port plus a config manifest.
func driftTarget(t *testing.T) (*machine.Machine, DriftTarget) {
	t.Helper()
	_, m := world(t)
	p, err := m.StartProcess("appd", "appd --serve", 8080)
	if err != nil {
		t.Fatal(err)
	}
	const manifest = "key = App 1.0\n"
	if err := m.WriteFile("/etc/engage/stacks/s/app.conf", manifest); err != nil {
		t.Fatal(err)
	}
	return m, DriftTarget{
		Instance:     "app",
		Machine:      m,
		ManifestPath: "/etc/engage/stacks/s/app.conf",
		PID:          p.PID,
		ProcName:     "appd",
		Command:      "appd --serve",
	}
}

func TestDriftKillStopsRecordedDaemon(t *testing.T) {
	m, tgt := driftTarget(t)
	plan := NewPlan(1).AddDrift(DriftRule{Kind: DriftKill, Mode: Persistent})
	kind, ok := plan.InjectDrift(tgt)
	if !ok || kind != DriftKill {
		t.Fatalf("InjectDrift = %v, %v", kind, ok)
	}
	if m.Running(tgt.PID) {
		t.Error("recorded daemon should be dead")
	}
	if m.Listening(8080) {
		t.Error("recorded port should be released")
	}
	evs := plan.Events()
	if len(evs) != 1 || evs[0].Op.Kind != OpDriftKill || evs[0].Op.Name != "app" {
		t.Errorf("event log = %+v", evs)
	}
}

func TestDriftConfigCorruptsManifest(t *testing.T) {
	m, tgt := driftTarget(t)
	plan := NewPlan(1).AddDrift(DriftRule{Kind: DriftConfig, Mode: Persistent})
	if kind, ok := plan.InjectDrift(tgt); !ok || kind != DriftConfig {
		t.Fatalf("InjectDrift = %v, %v", kind, ok)
	}
	content, err := m.ReadFile(tgt.ManifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(content, "drifted by plan-1") {
		t.Errorf("manifest = %q, want drift marker", content)
	}
	if !m.Running(tgt.PID) {
		t.Error("config drift must not touch the daemon")
	}
}

func TestDriftPortMovesDaemonOffPort(t *testing.T) {
	m, tgt := driftTarget(t)
	plan := NewPlan(1).AddDrift(DriftRule{Kind: DriftPort, Mode: Persistent})
	if kind, ok := plan.InjectDrift(tgt); !ok || kind != DriftPort {
		t.Fatalf("InjectDrift = %v, %v", kind, ok)
	}
	if m.Running(tgt.PID) {
		t.Error("original daemon should be dead")
	}
	if m.Listening(8080) {
		t.Error("recorded port should no longer be served")
	}
	// An impostor with the daemon's name is running, off-port.
	imp, ok := m.FindProcess("appd")
	if !ok {
		t.Fatal("impostor process should exist")
	}
	if imp.PID == tgt.PID || len(imp.Ports) != 0 {
		t.Errorf("impostor = %+v", imp)
	}
}

// TestDriftKindApplicability pins kindsFor: a passive target (no
// daemon) can only suffer config drift, and a target with nothing
// recorded cannot drift at all.
func TestDriftKindApplicability(t *testing.T) {
	_, m := world(t)
	if err := m.WriteFile("/etc/x.conf", "x"); err != nil {
		t.Fatal(err)
	}
	passive := DriftTarget{Instance: "lib", Machine: m, ManifestPath: "/etc/x.conf"}
	plan := NewPlan(3).AddDrift(DriftRule{Kind: DriftAny, Mode: Persistent})
	for i := 0; i < 5; i++ {
		kind, ok := plan.InjectDrift(passive)
		if !ok || kind != DriftConfig {
			t.Fatalf("passive target: InjectDrift = %v, %v (want config only)", kind, ok)
		}
	}
	// A kill rule cannot fire on a passive target.
	killOnly := NewPlan(3).AddDrift(DriftRule{Kind: DriftKill, Mode: Persistent})
	if _, ok := killOnly.InjectDrift(passive); ok {
		t.Error("kill drift must not fire without a live daemon")
	}
	// Nothing recorded, nothing to drift.
	if _, ok := plan.InjectDrift(DriftTarget{Instance: "ghost", Machine: m}); ok {
		t.Error("bare target must not drift")
	}
}

// TestDriftRuleModesAndGlobs pins transient counting and glob scoping.
func TestDriftRuleModesAndGlobs(t *testing.T) {
	_, tgt := driftTarget(t)
	plan := NewPlan(1).AddDrift(DriftRule{Kind: DriftConfig, Mode: Transient, Times: 2})
	for i := 0; i < 2; i++ {
		if _, ok := plan.InjectDrift(tgt); !ok {
			t.Fatalf("transient firing %d should fire", i+1)
		}
	}
	if _, ok := plan.InjectDrift(tgt); ok {
		t.Error("transient rule should stop after Times firings")
	}

	scoped := NewPlan(1).AddDrift(DriftRule{Kind: DriftConfig, Mode: Persistent, Instance: "db-*"})
	if _, ok := scoped.InjectDrift(tgt); ok {
		t.Error("non-matching instance glob should not fire")
	}
	tgt2 := tgt
	tgt2.Instance = "db-1"
	if _, ok := scoped.InjectDrift(tgt2); !ok {
		t.Error("matching instance glob should fire")
	}
}

// TestDriftScheduleReproducible replays a probabilistic drift schedule
// and demands the identical decision sequence and event log.
func TestDriftScheduleReproducible(t *testing.T) {
	run := func() []Event {
		_, tgt := driftTarget(t)
		plan := NewPlan(42).DriftWithProbability(0.5)
		for i := 0; i < 20; i++ {
			plan.InjectDrift(tgt)
			// Re-arm: a killed daemon limits later applicable kinds, so
			// refresh the target to keep all kinds in play.
			if !tgt.Machine.Running(tgt.PID) {
				if p, ok := tgt.Machine.FindProcess("appd"); ok {
					tgt.Machine.KillProcess(p.PID)
				}
				p, err := tgt.Machine.StartProcess("appd", "appd --serve", 8080)
				if err != nil {
					t.Fatal(err)
				}
				tgt.PID = p.PID
			}
		}
		return plan.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("drift schedules differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Op.Kind != b[i].Op.Kind || a[i].Rule != b[i].Rule {
			t.Errorf("drift %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
