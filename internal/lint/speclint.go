package lint

import (
	"fmt"
	"sort"
	"strings"

	"engage/internal/constraint"
	"engage/internal/hypergraph"
	"engage/internal/resource"
	"engage/internal/sat"
	"engage/internal/spec"
)

// TargetRef names one candidate of a dependency constraint.
type TargetRef struct {
	ID  string       `json:"id"`
	Key resource.Key `json:"key"`
}

// CoreConstraint is one member of a minimal unsatisfiable subset,
// translated from its assumption selector back through the constraint →
// hyperedge → resource mapping.
type CoreConstraint struct {
	// Kind is "spec" (the specification pins an instance) or
	// "dependency" (an exactly-one dependency constraint).
	Kind string `json:"kind"`
	// Instance is the pinned instance (spec) or the dependency's source
	// instance (dependency).
	Instance string       `json:"instance"`
	Key      resource.Key `json:"key"`
	// Class and Targets describe dependency constraints only.
	Class   string      `json:"class,omitempty"`
	Targets []TargetRef `json:"targets,omitempty"`
}

// String renders the constraint as one story line; the control plane's
// unsat error bodies carry it next to the structured core.
func (c CoreConstraint) String() string { return c.describe() }

// describe renders the constraint as one story line.
func (c CoreConstraint) describe() string {
	if c.Kind == "spec" {
		return fmt.Sprintf("the specification pins instance %q to %s", c.Instance, c.Key)
	}
	parts := make([]string, len(c.Targets))
	for i, t := range c.Targets {
		parts[i] = fmt.Sprintf("%q (%s)", t.ID, t.Key)
	}
	return fmt.Sprintf("instance %q (%s) requires exactly one %s dependency among %s",
		c.Instance, c.Key, c.Class, strings.Join(parts, ", "))
}

// UnsatExplanation is the minimal-core explanation of an unsatisfiable
// installation specification.
type UnsatExplanation struct {
	// Selectors is the total number of assumption-guarded constraint
	// groups in the encoding.
	Selectors int `json:"selectors"`
	// RawCoreSize is the size of the solver's first assumption core,
	// before shrinking.
	RawCoreSize int `json:"rawCore"`
	// Solves counts the SAT calls spent deriving the explanation (the
	// initial solve plus the deletion probes).
	Solves int `json:"solves"`
	// Core is the MUS: removing any one constraint makes the rest
	// satisfiable.
	Core []CoreConstraint `json:"core"`
	// Cert carries the raw material for independent verification of the
	// conflict story (internal/certify): the encoded formula, the
	// solver's proof, the MUS selectors, and per-member minimality
	// witness models. It is process-local and never serialized.
	Cert *UnsatCertificate `json:"-"`
}

// UnsatCertificate backs an UnsatExplanation with checkable evidence:
// the CNF the story was derived on, the solver's DRAT-style proof
// (which includes a core-claim lemma for every assumption failure), the
// MUS in story order, and — aligned with it — the witness model that
// justified deleting each member during shrinking (nil entries were
// not probed). internal/certify.CheckMUS consumes exactly this shape.
type UnsatCertificate struct {
	Formula   *sat.Formula
	Proof     *sat.Proof
	MUS       []sat.Lit
	Witnesses [][]bool
}

// Summary renders the explanation on one line, for error messages and
// diagnostics.
func (e *UnsatExplanation) Summary() string {
	parts := make([]string, len(e.Core))
	for i, c := range e.Core {
		parts[i] = c.describe()
	}
	return fmt.Sprintf("minimal conflict (%d of %d constraints, shrunk from a core of %d): %s",
		len(e.Core), e.Selectors, e.RawCoreSize, strings.Join(parts, "; "))
}

// Story renders the explanation as a multi-line, human-readable
// conflict narrative.
func (e *UnsatExplanation) Story() string {
	var b strings.Builder
	fmt.Fprintf(&b, "these %d constraints are jointly unsatisfiable (minimal core, shrunk from a solver core of %d):",
		len(e.Core), e.RawCoreSize)
	for _, c := range e.Core {
		b.WriteString("\n  - ")
		b.WriteString(c.describe())
	}
	return b.String()
}

// ExplainUnsat checks a partial specification against the library and,
// when it is unsatisfiable, derives the MUS explanation: encode with
// assumption selectors, solve, shrink the core, translate. It returns
// nil when the specification is satisfiable (or the hypergraph cannot
// be generated — that failure is CodeSpecInvalid territory, not a
// constraint conflict).
func ExplainUnsat(reg *resource.Registry, partial *spec.Partial, opts Options) *UnsatExplanation {
	g, err := hypergraph.Generate(reg, partial)
	if err != nil {
		return nil
	}
	return ExplainGraphUnsat(g, opts)
}

// ExplainGraphUnsat is ExplainUnsat for an already-generated
// hypergraph; internal/config calls this on the graph it built so a
// failed Solve can attach the explanation to its error.
func ExplainGraphUnsat(g *hypergraph.Graph, opts Options) *UnsatExplanation {
	ap := constraint.EncodeAssumable(g, opts.Encoding)
	inc := sat.StartIncremental(opts.solver(), ap.Formula)
	startProof(inc)
	res := inc.SolveAssuming(ap.Selectors)
	if res.Status != sat.Unsat {
		return nil
	}
	return explainFromSession(g, ap, inc, res.Core)
}

// lintProofCap bounds proof logs on lint sessions. Spec problems are
// small; a capped (hence refused) certificate would mean something is
// deeply wrong, and the cap keeps a pathological encoding from eating
// memory.
const lintProofCap = 1 << 20

// startProof turns on proof logging when the session supports it, so
// every unsat story lint produces arrives with a checkable certificate.
func startProof(inc sat.IncrementalSolver) {
	if pl, ok := inc.(sat.ProofLogger); ok {
		pl.StartProof(lintProofCap)
	}
}

// sessionProof extracts the finished proof, nil when logging was off.
func sessionProof(inc sat.IncrementalSolver) *sat.Proof {
	if pl, ok := inc.(sat.ProofLogger); ok {
		return pl.Proof()
	}
	return nil
}

// explainFromSession shrinks an assumption core on a live incremental
// session and translates the surviving selectors into CoreConstraints.
func explainFromSession(g *hypergraph.Graph, ap *constraint.AssumableProblem, inc sat.IncrementalSolver, core []sat.Lit) *UnsatExplanation {
	mus, wit, st := sat.ShrinkCoreWitnessed(inc, core)
	// Selector variables are allocated in group-creation order; sorting
	// by variable restores spec-then-edge order for the story.
	sort.Slice(mus, func(i, j int) bool { return mus[i].Var() < mus[j].Var() })

	e := &UnsatExplanation{
		Selectors:   len(ap.Selectors),
		RawCoreSize: len(core),
		Solves:      st.Solves + 1,
	}
	if p := sessionProof(inc); p != nil {
		cert := &UnsatCertificate{
			Formula:   ap.Formula,
			Proof:     p,
			MUS:       append([]sat.Lit(nil), mus...),
			Witnesses: make([][]bool, len(mus)),
		}
		for i, m := range mus {
			cert.Witnesses[i] = wit[m]
		}
		e.Cert = cert
	}
	for _, l := range mus {
		gr, ok := ap.GroupFor(l)
		if !ok {
			continue
		}
		e.Core = append(e.Core, translateGroup(g, gr))
	}
	return e
}

func translateGroup(g *hypergraph.Graph, gr constraint.Group) CoreConstraint {
	c := CoreConstraint{Instance: gr.Instance}
	if n, ok := g.Node(gr.Instance); ok {
		c.Key = n.Key
	}
	if gr.Kind == constraint.GroupSpec {
		c.Kind = "spec"
		return c
	}
	c.Kind = "dependency"
	e := g.Edges[gr.Edge]
	c.Class = e.Class.String()
	for _, id := range e.Targets {
		tr := TargetRef{ID: id}
		if n, ok := g.Node(id); ok {
			tr.Key = n.Key
		}
		c.Targets = append(c.Targets, tr)
	}
	return c
}

// configDiagnostics probes a satisfiable specification for degenerate
// choices. For every disjunctive hyperedge it asks, per target, whether
// any full installation selects both the source and that target: one
// feasible target is a forced choice; a mix of feasible and infeasible
// targets is a near-conflict. All probes share the warm session the
// satisfiability check already paid for.
func configDiagnostics(g *hypergraph.Graph, ap *constraint.AssumableProblem, inc sat.IncrementalSolver, rep *Report) {
	assumps := make([]sat.Lit, 0, len(ap.Selectors)+2)
	for _, e := range g.Edges {
		if len(e.Targets) < 2 {
			continue
		}
		srcLit := sat.Lit(ap.VarOf[e.Source])
		var feasible, infeasible []TargetRef
		for _, id := range e.Targets {
			assumps = assumps[:0]
			assumps = append(assumps, ap.Selectors...)
			assumps = append(assumps, srcLit, sat.Lit(ap.VarOf[id]))
			ref := TargetRef{ID: id}
			if n, ok := g.Node(id); ok {
				ref.Key = n.Key
			}
			switch inc.SolveAssuming(assumps).Status {
			case sat.Sat:
				feasible = append(feasible, ref)
			case sat.Unsat:
				infeasible = append(infeasible, ref)
			}
		}
		switch {
		case len(feasible) == 1 && len(infeasible) == len(e.Targets)-1:
			rep.add(CodeForcedChoice, "", e.Source,
				"the %s dependency of %q is a forced choice: of %d candidates only %q (%s) is feasible",
				e.Class, e.Source, len(e.Targets), feasible[0].ID, feasible[0].Key)
		case len(feasible) > 1 && len(infeasible) > 0:
			rep.add(CodeNearConflict, "", e.Source,
				"the %s dependency of %q cannot use %s: every installation choosing one of them is unsatisfiable",
				e.Class, e.Source, renderRefs(infeasible))
		}
	}
}

func renderRefs(refs []TargetRef) string {
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = fmt.Sprintf("%q (%s)", r.ID, r.Key)
	}
	return strings.Join(parts, ", ")
}
