package lint_test

import (
	"testing"

	"engage/internal/certify"
	"engage/internal/lint"
)

// TestUnsatCertificateVerifies: the certificate attached to an unsat
// explanation must survive independent verification — the MUS is UNSAT
// by the solver's own replayed proof, and every member's minimality is
// backed by a witness model.
func TestUnsatCertificateVerifies(t *testing.T) {
	reg := parseLib(t, specRDL)
	rep := lint.Check(reg, unsatPartial(), lint.Options{})
	if rep.Unsat == nil {
		t.Fatalf("fixture did not produce an unsat report: %v", rep.Diagnostics)
	}
	c := rep.Unsat.Cert
	if c == nil {
		t.Fatal("unsat explanation carries no certificate")
	}
	if len(c.MUS) != len(rep.Unsat.Core) {
		t.Fatalf("certificate MUS has %d selectors, story has %d constraints", len(c.MUS), len(rep.Unsat.Core))
	}
	spot, _, err := certify.CheckMUS(c.Formula, c.Proof, c.MUS, c.Witnesses)
	if err != nil {
		t.Fatalf("certify refuted the lint certificate: %v", err)
	}
	if spot != len(c.MUS) {
		t.Errorf("minimality spot-checked for %d of %d MUS members", spot, len(c.MUS))
	}

	// Dropping a MUS member must break the core claim: the remaining
	// selectors are jointly satisfiable, so no conflict can be derived.
	if len(c.MUS) > 1 {
		if _, _, err := certify.CheckMUS(c.Formula, c.Proof, c.MUS[1:], c.Witnesses[1:]); err == nil {
			t.Error("certify accepted a MUS with a member removed")
		}
	}
}
