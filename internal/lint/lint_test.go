package lint_test

import (
	"strings"
	"testing"

	"engage/internal/lint"
	"engage/internal/rdl"
	"engage/internal/resource"
	"engage/internal/spec"
)

func parseLib(t *testing.T, src string) *resource.Registry {
	t.Helper()
	reg, err := rdl.ParseAndResolve(map[string]string{"lib.rdl": src})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// one asserts the report holds exactly one diagnostic with the code and
// returns it.
func one(t *testing.T, rep *lint.Report, code string) lint.Diagnostic {
	t.Helper()
	ds := rep.ByCode(code)
	if len(ds) != 1 {
		t.Fatalf("got %d %s diagnostics, want 1; report: %v", len(ds), code, rep.Diagnostics)
	}
	return ds[0]
}

func wantMessage(t *testing.T, d lint.Diagnostic, want string) {
	t.Helper()
	if d.Message != want {
		t.Errorf("message mismatch\n got: %s\nwant: %s", d.Message, want)
	}
}

// Each library-level diagnostic code gets a minimal seeded-defect
// fixture with an exact-message assertion.

func TestTypecheckDiagnostics(t *testing.T) {
	reg := parseLib(t, `
resource "M 1" {
    input { x: string }
}`)
	rep := lint.Library(reg, lint.Options{})
	ds := rep.ByCode(lint.CodeTypecheck)
	if len(ds) != 2 {
		t.Fatalf("got %d typecheck diagnostics, want 2: %v", len(ds), rep.Diagnostics)
	}
	wantMessage(t, ds[0], `type "M 1": machine (no inside dependency) must not have input ports`)
	wantMessage(t, ds[1], `type "M 1": input port "x" is not mapped by any dependency`)
	if ds[0].Severity != lint.Error || ds[0].Subject != "M 1" || ds[0].Pos != "lib.rdl:2:1" {
		t.Errorf("diagnostic metadata wrong: %+v", ds[0])
	}
}

func TestDepCycleDiagnostic(t *testing.T) {
	reg := parseLib(t, `
resource "M 1" { }
resource "A 1" {
    inside "M 1"
    peer "B 1"
}
resource "B 1" {
    inside "M 1"
    peer "A 1"
}`)
	rep := lint.Library(reg, lint.Options{})
	d := one(t, rep, lint.CodeDepCycle)
	wantMessage(t, d, `dependency cycle among resource types: A 1 -> B 1 -> A 1`)
	if d.Subject != "A 1" || d.Severity != lint.Error {
		t.Errorf("diagnostic metadata wrong: %+v", d)
	}
}

const deadRDL = `
resource "M 1" { }
abstract resource "Db" {
    inside "M 1"
    output { url: string = "u" }
}
resource "App 1" {
    inside "M 1"
    input { db: string }
    output { addr: string = "a" }
    env "Db" { url -> db }
}
resource "Top 1" {
    inside "M 1"
    input { a: string }
    env "App 1" { addr -> a }
}`

func TestEmptyFrontierAndDeadResourceDiagnostics(t *testing.T) {
	reg := parseLib(t, deadRDL)
	rep := lint.Library(reg, lint.Options{})

	ef := one(t, rep, lint.CodeEmptyFrontier)
	wantMessage(t, ef, `abstract resource "Db" has no concrete subtype; no dependency on it can ever be satisfied`)
	if ef.Pos != "lib.rdl:3:1" {
		t.Errorf("empty-frontier pos = %q, want lib.rdl:3:1", ef.Pos)
	}

	dead := rep.ByCode(lint.CodeDeadResource)
	if len(dead) != 2 {
		t.Fatalf("got %d dead-resource diagnostics, want 2: %v", len(dead), rep.Diagnostics)
	}
	wantMessage(t, dead[0], `resource "App 1" can never be deployed: its environment dependency Db has no deployable target`)
	wantMessage(t, dead[1], `resource "Top 1" can never be deployed: every candidate of its environment dependency App 1 is itself undeployable`)
	if rep.Count(lint.Error) != 3 {
		t.Errorf("errors = %d, want 3", rep.Count(lint.Error))
	}
}

func TestUnreachableVersionDiagnostic(t *testing.T) {
	reg := parseLib(t, `
resource "M 1" { }
abstract resource "Db" {
    inside "M 1"
    output { url: string = "u" }
}
resource "Db 1.0" extends "Db" {}
resource "Db 2.0" {
    inside "M 1"
    output { url: string = "u" }
}
resource "App 1" {
    inside "M 1"
    input { db: string }
    env "Db" { url -> db }
}`)
	rep := lint.Library(reg, lint.Options{})
	d := one(t, rep, lint.CodeUnreachableVersion)
	wantMessage(t, d, `resource "Db 2.0" can never be chosen for a dependency, but other versions of "Db" can; it is shadowed by the subtyping frontier`)
	if d.Severity != lint.Warning || rep.HasErrors() {
		t.Errorf("unexpected severities: %v", rep.Diagnostics)
	}
}

func TestUnusedOutputDiagnostic(t *testing.T) {
	reg := parseLib(t, `
resource "M 1" { }
resource "Db 1" {
    inside "M 1"
    output {
        url: string = "u"
        extra: string = "x"
    }
}
resource "App 1" {
    inside "M 1"
    input { db: string }
    env "Db 1" { url -> db }
}`)
	rep := lint.Library(reg, lint.Options{})
	d := one(t, rep, lint.CodeUnusedOutput)
	wantMessage(t, d, `output port "extra" of "Db 1" is never read: no dependency in the library maps it`)
	if !strings.HasPrefix(d.Pos, "lib.rdl:7:") {
		t.Errorf("pos = %q, want the extra port's declaration (lib.rdl:7:*)", d.Pos)
	}
}

func TestPortMismatchDiagnostic(t *testing.T) {
	reg := parseLib(t, `
resource "M 1" { }
abstract resource "Db" {
    inside "M 1"
    output { url: string = "u" }
}
resource "Db 1.0" extends "Db" {
    output { url: tcp_port = 5432 }
}
resource "App 1" {
    inside "M 1"
    input { db: string }
    env "Db" { url -> db }
}`)
	rep := lint.Library(reg, lint.Options{})
	d := one(t, rep, lint.CodePortMismatch)
	wantMessage(t, d, `environment dependency Db of "App 1" may resolve to "Db 1.0", whose output "url" (tcp_port) is not assignable to input "db" (string)`)
	// The drifted extension itself is the typecheck's finding; the
	// use-site impact is lint's.
	if len(rep.ByCode(lint.CodeTypecheck)) == 0 {
		t.Errorf("expected an invalid-extension typecheck diagnostic alongside port-mismatch: %v", rep.Diagnostics)
	}
}

// specRDL is the satisfiable two-version library the spec-level tests
// pin into conflicts.
const specRDL = `
resource "M 1" { }
abstract resource "Db" {
    inside "M 1"
    output { url: string = "u" }
}
resource "Db 1.0" extends "Db" {}
resource "Db 2.0" extends "Db" {}
resource "App 1" {
    inside "M 1"
    input { db: string }
    env "Db" { url -> db }
}`

func unsatPartial() *spec.Partial {
	p := &spec.Partial{}
	p.Add("m", resource.MakeKey("M", "1"))
	p.Add("app", resource.MakeKey("App", "1")).In("m")
	p.Add("db1", resource.MakeKey("Db", "1.0")).In("m")
	p.Add("db2", resource.MakeKey("Db", "2.0")).In("m")
	return p
}

func TestSpecInvalidDiagnostic(t *testing.T) {
	reg := parseLib(t, specRDL)
	p := &spec.Partial{}
	p.Add("x", resource.MakeKey("Nope", ""))
	rep := lint.Check(reg, p, lint.Options{})
	d := one(t, rep, lint.CodeSpecInvalid)
	wantMessage(t, d, `specification rejected: hypergraph: instance "x": unknown resource type "Nope"`)
}

func TestSpecUnsatDiagnostic(t *testing.T) {
	reg := parseLib(t, specRDL)
	rep := lint.Check(reg, unsatPartial(), lint.Options{})
	d := one(t, rep, lint.CodeSpecUnsat)

	e := rep.Unsat
	if e == nil {
		t.Fatal("unsat explanation missing")
	}
	if len(e.Core) != 4 {
		t.Fatalf("MUS size = %d, want 4: %+v", len(e.Core), e.Core)
	}
	if e.RawCoreSize < len(e.Core) || e.Solves < 2 {
		t.Errorf("implausible stats: %+v", e)
	}
	const conflict = `the specification pins instance "app" to App 1; ` +
		`the specification pins instance "db1" to Db 1.0; ` +
		`the specification pins instance "db2" to Db 2.0; ` +
		`instance "app" (App 1) requires exactly one environment dependency among "db1" (Db 1.0), "db2" (Db 2.0)`
	want := `no full installation satisfies the specification: ` +
		`minimal conflict (4 of 8 constraints, shrunk from a core of ` +
		itoa(e.RawCoreSize) + `): ` + conflict
	wantMessage(t, d, want)

	story := e.Story()
	for _, name := range []string{"App 1", "Db 1.0", "Db 2.0", `"db1"`, `"db2"`} {
		if !strings.Contains(story, name) {
			t.Errorf("story does not name %s:\n%s", name, story)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestForcedChoiceDiagnostic(t *testing.T) {
	reg := parseLib(t, `
resource "M 1" { }
abstract resource "Svc" {
    inside "M 1"
    output { addr: string = "s" }
}
resource "A 1" extends "Svc" {}
resource "B 1" extends "Svc" {
    input { db: string }
    env "Db" { url -> db }
}
abstract resource "Db" {
    inside "M 1"
    output { url: string = "u" }
}
resource "Db 1.0" extends "Db" {}
resource "Db 2.0" extends "Db" {}
resource "App 1" {
    inside "M 1"
    input { svc: string }
    env "Svc" { addr -> svc }
}`)
	p := &spec.Partial{}
	p.Add("m", resource.MakeKey("M", "1"))
	p.Add("app", resource.MakeKey("App", "1")).In("m")
	p.Add("db1", resource.MakeKey("Db", "1.0")).In("m")
	p.Add("db2", resource.MakeKey("Db", "2.0")).In("m")
	rep := lint.Check(reg, p, lint.Options{})
	d := one(t, rep, lint.CodeForcedChoice)
	wantMessage(t, d, `the environment dependency of "app" is a forced choice: of 2 candidates only "a-1@m" (A 1) is feasible`)
	if rep.Unsat != nil || len(rep.ByCode(lint.CodeSpecUnsat)) != 0 {
		t.Errorf("satisfiable spec produced an unsat explanation: %v", rep.Diagnostics)
	}
}

func TestNearConflictDiagnostic(t *testing.T) {
	reg := parseLib(t, `
resource "M 1" { }
abstract resource "Svc" {
    inside "M 1"
    output { addr: string = "s" }
}
resource "A 1" extends "Svc" {}
resource "B 1" extends "Svc" {}
resource "C 1" extends "Svc" {
    input { db: string }
    env "Db" { url -> db }
}
abstract resource "Db" {
    inside "M 1"
    output { url: string = "u" }
}
resource "Db 1.0" extends "Db" {}
resource "Db 2.0" extends "Db" {}
resource "App 1" {
    inside "M 1"
    input { svc: string }
    env "Svc" { addr -> svc }
}`)
	p := &spec.Partial{}
	p.Add("m", resource.MakeKey("M", "1"))
	p.Add("app", resource.MakeKey("App", "1")).In("m")
	p.Add("db1", resource.MakeKey("Db", "1.0")).In("m")
	p.Add("db2", resource.MakeKey("Db", "2.0")).In("m")
	rep := lint.Check(reg, p, lint.Options{})
	d := one(t, rep, lint.CodeNearConflict)
	wantMessage(t, d, `the environment dependency of "app" cannot use "c-1@m" (C 1): every installation choosing one of them is unsatisfiable`)
}

// TestCleanLibrary: a coherent library and a satisfiable spec produce
// no diagnostics at all.
func TestCleanLibrary(t *testing.T) {
	reg := parseLib(t, specRDL)
	p := &spec.Partial{}
	p.Add("m", resource.MakeKey("M", "1"))
	p.Add("app", resource.MakeKey("App", "1")).In("m")
	rep := lint.Check(reg, p, lint.Options{})
	// The env edge app→{Db 1.0, Db 2.0} has two feasible targets and no
	// infeasible ones: neither forced-choice nor near-conflict.
	if len(rep.Diagnostics) != 0 {
		t.Errorf("clean library produced diagnostics: %v", rep.Diagnostics)
	}
}

func TestCodesTable(t *testing.T) {
	codes := lint.Codes()
	if len(codes) != 15 {
		t.Errorf("Codes() = %v, want 15 entries", codes)
	}
	for _, c := range codes {
		if _, ok := lint.CodeSeverity(c); !ok {
			t.Errorf("CodeSeverity(%q) unknown", c)
		}
	}
	if _, ok := lint.CodeSeverity("no-such-code"); ok {
		t.Error("CodeSeverity accepted an unknown code")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Code: lint.CodeDeadResource, Severity: lint.Error, Pos: "lib.rdl:4:1", Message: "boom"}
	if got := d.String(); got != "lib.rdl:4:1: error[dead-resource] boom" {
		t.Errorf("String() = %q", got)
	}
	d.Pos = ""
	if got := d.String(); got != "error[dead-resource] boom" {
		t.Errorf("String() = %q", got)
	}
}
