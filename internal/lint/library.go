package lint

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"engage/internal/resource"
	"engage/internal/sat"
	"engage/internal/typecheck"
)

// libraryDiagnostics runs every library-level check, in a fixed order so
// reports are deterministic: typecheck violations, dependency cycles,
// empty frontiers, dead resources, shadowed versions, unused outputs,
// and whole-library port mismatches.
func libraryDiagnostics(reg *resource.Registry, opts Options, rep *Report) {
	ix := newLibIndex(reg)

	for _, err := range typecheck.Problems(reg) {
		subject, pos := subjectOfProblem(reg, err.Error())
		rep.add(CodeTypecheck, pos, subject, "%s", err.Error())
	}

	if cyc := typecheck.FindCycle(reg); len(cyc) > 0 {
		names := make([]string, len(cyc))
		for i, k := range cyc {
			names[i] = k.String()
		}
		rep.add(CodeDepCycle, ix.origin(cyc[0]), cyc[0].String(),
			"dependency cycle among resource types: %s", strings.Join(names, " -> "))
	}

	for _, k := range reg.Keys() {
		t := reg.MustLookup(k)
		if t.Abstract && len(reg.Children(k)) == 0 {
			rep.add(CodeEmptyFrontier, t.Origin, k.String(),
				"abstract resource %q has no concrete subtype; no dependency on it can ever be satisfied", k)
		}
	}

	dead := ix.deadResources(opts)
	for _, k := range ix.concrete {
		if why, isDead := dead[k]; isDead {
			rep.add(CodeDeadResource, ix.origin(k), k.String(),
				"resource %q can never be deployed: %s", k, why)
		}
	}

	ix.shadowedVersions(dead, rep)
	ix.unusedOutputs(rep)
	ix.portMismatches(rep)
}

// typeQuoted extracts the first quoted name from a typecheck message
// ('type "Web 1.0": ...') so the diagnostic can point at the
// declaration.
var typeQuoted = regexp.MustCompile(`"([^"]+)"`)

func subjectOfProblem(reg *resource.Registry, msg string) (subject, pos string) {
	m := typeQuoted.FindStringSubmatch(msg)
	if m == nil {
		return "", ""
	}
	k := resource.ParseKey(m[1])
	if t, ok := reg.Lookup(k); ok {
		return k.String(), t.Origin
	}
	return m[1], ""
}

// libIndex caches the library-wide relations the checks share: the
// subtype checker, the concrete keys, and per-dependency-target member
// sets.
type libIndex struct {
	reg      *resource.Registry
	sub      resource.SubtypeChecker
	keys     []resource.Key
	concrete []resource.Key
	members  map[resource.Key][]resource.Key
}

func newLibIndex(reg *resource.Registry) *libIndex {
	ix := &libIndex{
		reg:     reg,
		sub:     resource.NewSubtyper(reg),
		keys:    reg.Keys(),
		members: make(map[resource.Key][]resource.Key),
	}
	for _, k := range ix.keys {
		if !reg.MustLookup(k).Abstract {
			ix.concrete = append(ix.concrete, k)
		}
	}
	return ix
}

func (ix *libIndex) origin(k resource.Key) string {
	if t, ok := ix.reg.Lookup(k); ok {
		return t.Origin
	}
	return ""
}

// membersOf returns the concrete types a dependency on alt may resolve
// to at deployment time: the structural subtypes (the generator's
// instance-matching relation) united with the nominal concrete frontier
// (the generator's expansion relation — reachable even when a declared
// extension is structurally invalid). Sorted, deduplicated, cached.
func (ix *libIndex) membersOf(alt resource.Key) []resource.Key {
	if m, ok := ix.members[alt]; ok {
		return m
	}
	set := make(map[resource.Key]bool)
	for _, c := range ix.concrete {
		if ix.sub.IsSubtype(c, alt) {
			set[c] = true
		}
	}
	ix.nominalConcrete(alt, set)
	out := make([]resource.Key, 0, len(set))
	for k := range set { //engage:maporder — collected then sorted below
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	ix.members[alt] = out
	return out
}

// nominalConcrete adds the concrete frontier of k under the declared
// extends tree into set, tolerating abstract leaves (those are reported
// by the empty-frontier check, not here).
func (ix *libIndex) nominalConcrete(k resource.Key, set map[resource.Key]bool) {
	t, ok := ix.reg.Lookup(k)
	if !ok {
		return
	}
	if !t.Abstract {
		set[k] = true
		return
	}
	for _, c := range ix.reg.Children(k) {
		ix.nominalConcrete(c, set)
	}
}

// depMembers returns the union of membersOf over a dependency's
// alternatives, deduplicated, in alternative order.
func (ix *libIndex) depMembers(d resource.Dependency) []resource.Key {
	seen := make(map[resource.Key]bool)
	var out []resource.Key
	for _, alt := range d.Alternatives {
		for _, m := range ix.membersOf(alt) {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return out
}

// deadResources proves, per concrete type, whether any deployment
// containing it can exist. The proof is a type-level SAT problem — one
// variable per concrete type, one clause per dependency requiring some
// member to coexist — probed per type with SolveAssuming on a single
// incremental session. The returned map holds a one-line explanation
// for each dead type.
func (ix *libIndex) deadResources(opts Options) map[resource.Key]string {
	varOf := make(map[resource.Key]int, len(ix.concrete))
	for i, k := range ix.concrete {
		varOf[k] = i + 1
	}
	f := sat.NewFormula(len(ix.concrete))
	for _, k := range ix.concrete {
		t := ix.reg.MustLookup(k)
		for _, cd := range t.Deps() {
			clause := make([]sat.Lit, 0, 4)
			clause = append(clause, sat.Lit(-varOf[k]))
			for _, m := range ix.depMembers(cd.Dep) {
				clause = append(clause, sat.Lit(varOf[m]))
			}
			f.Add(clause...)
		}
	}

	inc := sat.StartIncremental(opts.solver(), f)
	dead := make(map[resource.Key]string)
	for _, k := range ix.concrete {
		res := inc.SolveAssuming([]sat.Lit{sat.Lit(varOf[k])})
		if res.Status == sat.Unsat {
			dead[k] = "" // explanation filled below, once the set is complete
		}
	}

	// Explain each dead type by the dependency that sinks it: a dead
	// type always has a dependency whose member set is empty or
	// entirely dead (the live set is closed under union, so a type all
	// of whose dependencies reach a live member would be live itself).
	for k := range dead { //engage:maporder — per-key rewrite, order-free
		t := ix.reg.MustLookup(k)
		for _, cd := range t.Deps() {
			ms := ix.depMembers(cd.Dep)
			if len(ms) == 0 {
				dead[k] = fmt.Sprintf("its %s dependency %s has no deployable target", cd.Class, cd.Dep)
				break
			}
			allDead := true
			for _, m := range ms {
				if _, isDead := dead[m]; !isDead {
					allDead = false
					break
				}
			}
			if allDead {
				dead[k] = fmt.Sprintf("every candidate of its %s dependency %s is itself undeployable", cd.Class, cd.Dep)
				break
			}
		}
		if dead[k] == "" {
			dead[k] = "no combination of dependency targets is deployable"
		}
	}
	return dead
}

// shadowedVersions warns about concrete versions that can never be
// chosen for any dependency while sibling versions of the same
// component can — typically a version left out of the subtyping
// frontier. Dead resources are skipped (the error supersedes the
// warning), as are types no version of which is a dependency target
// (top-of-stack applications).
func (ix *libIndex) shadowedVersions(dead map[resource.Key]string, rep *Report) {
	targeted := make(map[resource.Key]bool)
	for _, k := range ix.keys {
		t := ix.reg.MustLookup(k)
		for _, cd := range t.Deps() {
			for _, m := range ix.depMembers(cd.Dep) {
				targeted[m] = true
			}
		}
	}
	nameTargeted := make(map[string]bool)
	for k, v := range targeted { //engage:maporder — map-to-map derivation, order-free
		if v {
			nameTargeted[k.Name] = true
		}
	}
	for _, k := range ix.concrete {
		if targeted[k] || !nameTargeted[k.Name] {
			continue
		}
		if _, isDead := dead[k]; isDead {
			continue
		}
		if ix.reg.MustLookup(k).IsMachine() {
			continue // machines are named by the spec, never by dependencies
		}
		rep.add(CodeUnreachableVersion, ix.origin(k), k.String(),
			"resource %q can never be chosen for a dependency, but other versions of %q can; it is shadowed by the subtyping frontier", k, k.Name)
	}
}

// unusedOutputs warns about output ports of dependency-targetable types
// that no dependency in the library reads. Types nothing targets are
// skipped entirely: their outputs are the deployment's user-facing
// exports (e.g. an application URL). Inherited ports are reported once,
// at their declaring origin.
func (ix *libIndex) unusedOutputs(rep *Report) {
	// reads[k] is the set of output-port names of k some dependency
	// reads: forward port maps of dependencies that may resolve to k,
	// plus k's own reverse port maps (those outputs feed dependees).
	reads := make(map[resource.Key]map[string]bool)
	targeted := make(map[resource.Key]bool)
	mark := func(k resource.Key, port string) {
		if reads[k] == nil {
			reads[k] = make(map[string]bool)
		}
		reads[k][port] = true
	}
	for _, k := range ix.keys {
		t := ix.reg.MustLookup(k)
		for _, cd := range t.Deps() {
			receivers := ix.depMembers(cd.Dep)
			for _, alt := range cd.Dep.Alternatives {
				receivers = append(receivers, alt)
			}
			for _, m := range receivers {
				targeted[m] = true
				for outPort := range cd.Dep.PortMap {
					mark(m, outPort)
				}
			}
			for outPort := range cd.Dep.ReversePortMap {
				mark(k, outPort)
			}
		}
	}

	seen := make(map[string]bool) // dedupe inherited ports by origin
	for _, k := range ix.keys {
		if !targeted[k] {
			continue
		}
		t := ix.reg.MustLookup(k)
		for _, p := range t.Output {
			if reads[k][p.Name] {
				continue
			}
			dedupeKey := p.Origin + "|" + p.Name
			if p.Origin == "" {
				dedupeKey = k.String() + "|" + p.Name
			}
			if seen[dedupeKey] {
				continue
			}
			seen[dedupeKey] = true
			pos := p.Origin
			if pos == "" {
				pos = t.Origin
			}
			rep.add(CodeUnusedOutput, pos, k.String(),
				"output port %q of %q is never read: no dependency in the library maps it", p.Name, k)
		}
	}
}

// portMismatches checks port maps against every concrete member a
// dependency may resolve to at deployment time. The per-resource
// typecheck validates the declared alternatives only; a frontier member
// with drifted ports (an invalid extension still sits on the declared
// frontier) surfaces here, at its use site.
func (ix *libIndex) portMismatches(rep *Report) {
	for _, k := range ix.keys {
		t := ix.reg.MustLookup(k)
		for _, cd := range t.Deps() {
			declared := make(map[resource.Key]bool, len(cd.Dep.Alternatives))
			for _, alt := range cd.Dep.Alternatives {
				declared[alt] = true
			}
			for _, m := range ix.depMembers(cd.Dep) {
				if declared[m] {
					continue // the typecheck already validated declared targets
				}
				ix.checkMemberPorts(t, cd, m, rep)
			}
		}
	}
}

func (ix *libIndex) checkMemberPorts(t *resource.Type, cd resource.ClassedDep, m resource.Key, rep *Report) {
	mt, ok := ix.reg.Lookup(m)
	if !ok {
		return
	}
	for _, outPort := range sortedKeys(cd.Dep.PortMap) {
		inPort := cd.Dep.PortMap[outPort]
		ip, ok := t.FindPort(resource.SecInput, inPort)
		if !ok {
			continue // reported by the typecheck on t itself
		}
		op, ok := mt.FindPort(resource.SecOutput, outPort)
		if !ok {
			rep.add(CodePortMismatch, mt.Origin, t.Key.String(),
				"%s dependency %s of %q may resolve to %q, which has no output port %q",
				cd.Class, cd.Dep, t.Key, m, outPort)
			continue
		}
		if !op.Type.AssignableTo(ip.Type) {
			rep.add(CodePortMismatch, op.Origin, t.Key.String(),
				"%s dependency %s of %q may resolve to %q, whose output %q (%s) is not assignable to input %q (%s)",
				cd.Class, cd.Dep, t.Key, m, outPort, op.Type, inPort, ip.Type)
		}
	}
	for _, outPort := range sortedKeys(cd.Dep.ReversePortMap) {
		depIn := cd.Dep.ReversePortMap[outPort]
		op, ok := t.FindPort(resource.SecOutput, outPort)
		if !ok {
			continue // reported by the typecheck on t itself
		}
		ip, ok := mt.FindPort(resource.SecInput, depIn)
		if !ok {
			rep.add(CodePortMismatch, mt.Origin, t.Key.String(),
				"%s dependency %s of %q may resolve to %q, which has no input port %q for the reverse-mapped output %q",
				cd.Class, cd.Dep, t.Key, m, depIn, outPort)
			continue
		}
		if !op.Type.AssignableTo(ip.Type) {
			rep.add(CodePortMismatch, ip.Origin, t.Key.String(),
				"%s dependency %s of %q may resolve to %q: reverse-mapped output %q (%s) is not assignable to its input %q (%s)",
				cd.Class, cd.Dep, t.Key, m, outPort, op.Type, depIn, ip.Type)
		}
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m { //engage:maporder — collected then sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
