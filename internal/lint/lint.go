// Package lint is Engage's static diagnostics engine: it analyzes a
// resolved resource library and (optionally) a partial installation
// specification without deploying anything, and reports structured
// diagnostics.
//
// The engine works at three levels:
//
//   - library level: dead resources (no satisfiable dependency chain,
//     proved with per-resource SAT probes on one incremental session),
//     versions shadowed by the subtyping frontier, output ports nothing
//     reads, port-type mismatches across the whole library closure, and
//     dependency cycles, plus the per-type well-formedness violations of
//     internal/typecheck;
//   - specification level: when no full installation satisfies the
//     partial specification, a deletion-shrunk minimal unsatisfiable
//     subset (MUS) over per-instance and per-hyperedge assumption
//     selectors, translated back into a conflict story that names the
//     guilty resources and versions;
//   - configuration level: warnings for satisfiable specifications whose
//     solution space is degenerate — dependency choices forced to a
//     single feasible target, and targets that are individually
//     infeasible (near-conflicts).
//
// Every diagnostic carries a stable code, a severity, the RDL source
// position of the subject when known, and a message; reports round-trip
// through a machine-readable JSON form (WriteJSON / ReadReport).
package lint

import (
	"fmt"
	"sort"

	"engage/internal/constraint"
	"engage/internal/hypergraph"
	"engage/internal/resource"
	"engage/internal/sat"
	"engage/internal/spec"
	"engage/internal/telemetry"
)

// Severity classifies a diagnostic.
type Severity int

// Severities, in increasing order of gravity.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// The diagnostic codes. Each code has a fixed severity (CodeSeverity);
// DESIGN.md §10 documents them.
const (
	// CodeTypecheck wraps one per-type well-formedness violation from
	// internal/typecheck.
	CodeTypecheck = "typecheck"
	// CodeDepCycle reports a cycle in the union of the inside,
	// environment, and peer orderings over resource types.
	CodeDepCycle = "dep-cycle"
	// CodeEmptyFrontier reports an abstract type with no concrete
	// subtype: no dependency on it can ever be satisfied.
	CodeEmptyFrontier = "empty-frontier"
	// CodeDeadResource reports a concrete type that can never be
	// deployed: some dependency has no deployable target under any
	// choice of machines and alternatives.
	CodeDeadResource = "dead-resource"
	// CodeUnreachableVersion reports a concrete version that can never
	// be chosen for a dependency although sibling versions can — it is
	// shadowed by the subtyping frontier.
	CodeUnreachableVersion = "unreachable-version"
	// CodeUnusedOutput reports an output port of a dependency-targetable
	// type that no dependency in the library reads.
	CodeUnusedOutput = "unused-output"
	// CodePortMismatch reports a port-type conflict between a dependency
	// and a frontier member the per-resource typecheck never looks at.
	CodePortMismatch = "port-mismatch"
	// CodeSpecInvalid reports a partial specification the hypergraph
	// generator rejects (unknown types, abstract instantiation, broken
	// inside chains).
	CodeSpecInvalid = "spec-invalid"
	// CodeSpecUnsat reports a partial specification with no satisfying
	// full installation; the report's Unsat field carries the MUS.
	CodeSpecUnsat = "spec-unsat"
	// CodeForcedChoice reports a disjunctive dependency with exactly one
	// feasible target: the disjunction is an illusion.
	CodeForcedChoice = "forced-choice"
	// CodeNearConflict reports dependency targets that are individually
	// infeasible although the specification as a whole is satisfiable.
	CodeNearConflict = "near-conflict"
	// CodePlanConstraint reports a resolved installation whose chosen
	// instances violate a hyperedge constraint: a selected source whose
	// dependency is not satisfied by exactly one selected target
	// (internal/certify's solver-free plan verification).
	CodePlanConstraint = "plan-constraint"
	// CodePlanPort reports a resolved instance whose port values differ
	// from an independent re-derivation of the propagation semantics.
	CodePlanPort = "plan-port"
	// CodePlanClosure reports a resolved installation that is not
	// dependency-closed: an instance links to a target that is absent,
	// or sits on a different machine than its container chain implies.
	CodePlanClosure = "plan-closure"
	// CodePlanBinding reports a stack record binding that violates its
	// invariants: unknown instance, missing machine, malformed manifest
	// path, stale manifest text, or a daemon PID the monitor snapshot
	// says is dead.
	CodePlanBinding = "plan-binding"
)

// codeSeverity fixes the severity of each code.
var codeSeverity = map[string]Severity{
	CodeTypecheck:          Error,
	CodeDepCycle:           Error,
	CodeEmptyFrontier:      Error,
	CodeDeadResource:       Error,
	CodeUnreachableVersion: Warning,
	CodeUnusedOutput:       Warning,
	CodePortMismatch:       Error,
	CodeSpecInvalid:        Error,
	CodeSpecUnsat:          Error,
	CodeForcedChoice:       Warning,
	CodeNearConflict:       Warning,
	CodePlanConstraint:     Error,
	CodePlanPort:           Error,
	CodePlanClosure:        Error,
	CodePlanBinding:        Error,
}

// Codes returns all diagnostic codes in sorted order.
func Codes() []string {
	out := make([]string, 0, len(codeSeverity))
	for c := range codeSeverity { //engage:maporder — collected then sorted below
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// CodeSeverity returns the fixed severity of a code; ok is false for
// unknown codes.
func CodeSeverity(code string) (Severity, bool) {
	s, ok := codeSeverity[code]
	return s, ok
}

// Diagnostic is one finding.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	// Pos is the RDL source position ("file:line:col") of the subject,
	// when the library was loaded from RDL sources; empty otherwise.
	Pos string `json:"pos,omitempty"`
	// Subject names what the diagnostic is about: a resource key or an
	// instance ID.
	Subject string `json:"subject,omitempty"`
	Message string `json:"message"`
}

// String renders the diagnostic in compiler style:
//
//	lib.rdl:4:1: error[dead-resource] resource "Web 1.0" can never be deployed: ...
func (d Diagnostic) String() string {
	if d.Pos != "" {
		return fmt.Sprintf("%s: %s[%s] %s", d.Pos, d.Severity, d.Code, d.Message)
	}
	return fmt.Sprintf("%s[%s] %s", d.Severity, d.Code, d.Message)
}

// Report is the outcome of a lint run.
type Report struct {
	// Library and Spec label the inputs (file names or "<bundled>");
	// informational only.
	Library string `json:"library,omitempty"`
	Spec    string `json:"spec,omitempty"`

	Diagnostics []Diagnostic `json:"diagnostics"`

	// Unsat carries the minimal-core explanation when a spec-unsat
	// diagnostic was reported.
	Unsat *UnsatExplanation `json:"unsat,omitempty"`
}

func (r *Report) add(code string, pos, subject, format string, args ...any) {
	r.Diagnostics = append(r.Diagnostics, Diagnostic{
		Code:     code,
		Severity: codeSeverity[code],
		Pos:      pos,
		Subject:  subject,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Count returns the number of diagnostics at the given severity.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// HasErrors reports whether any diagnostic is an error.
func (r *Report) HasErrors() bool { return r.Count(Error) > 0 }

// ByCode returns the diagnostics with the given code, in report order.
func (r *Report) ByCode(code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

// Options configures a lint run. The zero value is usable: pairwise
// encoding, CDCL solver, no tracing, no metrics.
type Options struct {
	// Encoding selects the exactly-one encoding for the spec-level SAT
	// problems.
	Encoding constraint.Encoding
	// Solver solves the probe problems; nil means a fresh CDCL solver.
	// Solvers without incremental support fall back to cold re-solves.
	Solver sat.Solver
	// Tracer receives a "lint" span with per-level children; nil-safe.
	Tracer *telemetry.Tracer
	// Metrics receives lint.errors / lint.warnings / lint.infos
	// counters; may be nil.
	Metrics *telemetry.Registry
}

func (o Options) solver() sat.Solver {
	if o.Solver != nil {
		return o.Solver
	}
	return sat.NewCDCL()
}

// Library lints a resource library alone.
func Library(reg *resource.Registry, opts Options) *Report {
	return Check(reg, nil, opts)
}

// Check lints a resource library and, when partial is non-nil, the
// installation specification against it. The library-level checks run
// unconditionally; the spec- and configuration-level checks run only
// with a specification.
func Check(reg *resource.Registry, partial *spec.Partial, opts Options) *Report {
	root := opts.Tracer.Span("lint")
	rep := &Report{}

	lib := root.Child("lint.library")
	libraryDiagnostics(reg, opts, rep)
	lib.Int("diags", int64(len(rep.Diagnostics))).End()

	if partial != nil {
		specDiagnostics(reg, partial, opts, root, rep)
	}

	root.Int("errors", int64(rep.Count(Error))).
		Int("warnings", int64(rep.Count(Warning))).
		End()
	if m := opts.Metrics; m != nil {
		m.Counter("lint.errors").Add(int64(rep.Count(Error)))
		m.Counter("lint.warnings").Add(int64(rep.Count(Warning)))
		m.Counter("lint.infos").Add(int64(rep.Count(Info)))
	}
	return rep
}

// specDiagnostics runs the specification- and configuration-level
// checks: generate the hypergraph, solve under assumption selectors,
// then either explain the conflict (unsat) or probe for degenerate
// choices (sat).
func specDiagnostics(reg *resource.Registry, partial *spec.Partial, opts Options, root *telemetry.Span, rep *Report) {
	sp := root.Child("lint.spec")
	defer sp.End()

	g, err := hypergraph.Generate(reg, partial)
	if err != nil {
		rep.add(CodeSpecInvalid, "", "", "specification rejected: %v", err)
		return
	}
	ap := constraint.EncodeAssumable(g, opts.Encoding)
	inc := sat.StartIncremental(opts.solver(), ap.Formula)
	startProof(inc)
	res := inc.SolveAssuming(ap.Selectors)
	sp.Int("nodes", int64(g.Len())).Int("constraints", int64(len(ap.Selectors)))

	if res.Status == sat.Unsat {
		expl := explainFromSession(g, ap, inc, res.Core)
		rep.Unsat = expl
		rep.add(CodeSpecUnsat, "", "", "no full installation satisfies the specification: %s", expl.Summary())
		sp.Int("mus", int64(len(expl.Core))).Int("rawCore", int64(expl.RawCoreSize))
		return
	}
	if res.Status != sat.Sat {
		return // solver gave up; nothing sound to report
	}

	cfg := root.Child("lint.config")
	configDiagnostics(g, ap, inc, rep)
	cfg.End()
}
