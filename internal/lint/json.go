package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	switch s {
	case Info, Warning, Error:
		return json.Marshal(s.String())
	}
	return nil, fmt.Errorf("lint: cannot marshal severity %d", int(s))
}

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("lint: unknown severity %q", name)
	}
	return nil
}

// reportJSON is the versioned on-the-wire envelope. The severity counts
// are redundant with the diagnostics list; the reader recomputes and
// cross-checks them.
type reportJSON struct {
	Version     int               `json:"version"`
	Library     string            `json:"library,omitempty"`
	Spec        string            `json:"spec,omitempty"`
	Errors      int               `json:"errors"`
	Warnings    int               `json:"warnings"`
	Infos       int               `json:"infos"`
	Diagnostics []Diagnostic      `json:"diagnostics"`
	Unsat       *UnsatExplanation `json:"unsat,omitempty"`
}

// jsonVersion is the current envelope version.
const jsonVersion = 1

// WriteJSON writes the report in the machine-readable envelope.
func (r *Report) WriteJSON(w io.Writer) error {
	env := reportJSON{
		Version:     jsonVersion,
		Library:     r.Library,
		Spec:        r.Spec,
		Errors:      r.Count(Error),
		Warnings:    r.Count(Warning),
		Infos:       r.Count(Info),
		Diagnostics: r.Diagnostics,
		Unsat:       r.Unsat,
	}
	if env.Diagnostics == nil {
		env.Diagnostics = []Diagnostic{}
	}
	data, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadReport parses and validates a JSON report: the envelope version
// must be current, every diagnostic code must be known and carry its
// fixed severity, the severity counts must match the diagnostics, and a
// spec-unsat diagnostic and the Unsat explanation must come together.
func ReadReport(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	var env reportJSON
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("lint: invalid report: %v", err)
	}
	if env.Version != jsonVersion {
		return nil, fmt.Errorf("lint: unsupported report version %d (want %d)", env.Version, jsonVersion)
	}
	r := &Report{
		Library:     env.Library,
		Spec:        env.Spec,
		Diagnostics: env.Diagnostics,
		Unsat:       env.Unsat,
	}
	for i, d := range r.Diagnostics {
		want, known := codeSeverity[d.Code]
		if !known {
			return nil, fmt.Errorf("lint: diagnostic %d has unknown code %q", i, d.Code)
		}
		if d.Severity != want {
			return nil, fmt.Errorf("lint: diagnostic %d (%s) has severity %s, want %s", i, d.Code, d.Severity, want)
		}
		if d.Message == "" {
			return nil, fmt.Errorf("lint: diagnostic %d (%s) has no message", i, d.Code)
		}
	}
	if env.Errors != r.Count(Error) || env.Warnings != r.Count(Warning) || env.Infos != r.Count(Info) {
		return nil, fmt.Errorf("lint: severity counts (%d/%d/%d) do not match diagnostics (%d/%d/%d)",
			env.Errors, env.Warnings, env.Infos, r.Count(Error), r.Count(Warning), r.Count(Info))
	}
	hasUnsatDiag := len(r.ByCode(CodeSpecUnsat)) > 0
	if hasUnsatDiag != (r.Unsat != nil) {
		return nil, fmt.Errorf("lint: spec-unsat diagnostic and unsat explanation must come together")
	}
	if r.Unsat != nil && len(r.Unsat.Core) > r.Unsat.RawCoreSize {
		return nil, fmt.Errorf("lint: MUS larger than the raw core (%d > %d)", len(r.Unsat.Core), r.Unsat.RawCoreSize)
	}
	return r, nil
}
