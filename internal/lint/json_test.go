package lint_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"engage/internal/lint"
)

// TestJSONRoundTrip: a report with diagnostics at every level and an
// unsat explanation survives WriteJSON → ReadReport unchanged.
func TestJSONRoundTrip(t *testing.T) {
	reg := parseLib(t, specRDL)
	rep := lint.Check(reg, unsatPartial(), lint.Options{})
	rep.Library = "lib.rdl"
	rep.Spec = "spec.json"
	if rep.Unsat == nil || len(rep.Diagnostics) == 0 {
		t.Fatalf("fixture did not produce an unsat report: %v", rep.Diagnostics)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := lint.ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadReport: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(back.Diagnostics, rep.Diagnostics) {
		t.Errorf("diagnostics changed:\n got %+v\nwant %+v", back.Diagnostics, rep.Diagnostics)
	}
	// The certificate is process-local evidence and never serialized.
	if rep.Unsat.Cert == nil {
		t.Error("in-process explanation carries no certificate")
	}
	want := *rep.Unsat
	want.Cert = nil
	if !reflect.DeepEqual(back.Unsat, &want) {
		t.Errorf("explanation changed:\n got %+v\nwant %+v", back.Unsat, &want)
	}
	if back.Library != "lib.rdl" || back.Spec != "spec.json" {
		t.Errorf("labels changed: %q %q", back.Library, back.Spec)
	}
}

// TestJSONEmptyReport: a clean report round-trips with an empty (not
// null) diagnostics array.
func TestJSONEmptyReport(t *testing.T) {
	var buf bytes.Buffer
	if err := (&lint.Report{}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Errorf("empty report should render an empty array:\n%s", buf.String())
	}
	back, err := lint.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Diagnostics) != 0 || back.Unsat != nil {
		t.Errorf("unexpected content: %+v", back)
	}
}

// TestReadReportValidates: the reader rejects envelopes that are
// structurally JSON but semantically wrong.
func TestReadReportValidates(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"bad version", `{"version": 2, "diagnostics": []}`, "unsupported report version"},
		{"unknown field", `{"version": 1, "diagnostics": [], "bogus": true}`, "invalid report"},
		{"unknown code", `{"version": 1, "errors": 1, "diagnostics": [
			{"code": "made-up", "severity": "error", "message": "m"}]}`, `unknown code "made-up"`},
		{"wrong severity", `{"version": 1, "warnings": 1, "diagnostics": [
			{"code": "dead-resource", "severity": "warning", "message": "m"}]}`, "has severity warning, want error"},
		{"bad severity name", `{"version": 1, "diagnostics": [
			{"code": "dead-resource", "severity": "fatal", "message": "m"}]}`, `unknown severity "fatal"`},
		{"empty message", `{"version": 1, "errors": 1, "diagnostics": [
			{"code": "dead-resource", "severity": "error", "message": ""}]}`, "has no message"},
		{"count mismatch", `{"version": 1, "errors": 2, "diagnostics": [
			{"code": "dead-resource", "severity": "error", "message": "m"}]}`, "do not match"},
		{"orphan explanation", `{"version": 1, "diagnostics": [],
			"unsat": {"selectors": 1, "rawCore": 1, "solves": 1, "core": []}}`, "must come together"},
		{"mus exceeds core", `{"version": 1, "errors": 1, "diagnostics": [
			{"code": "spec-unsat", "severity": "error", "message": "m"}],
			"unsat": {"selectors": 3, "rawCore": 1, "solves": 1, "core": [
				{"kind": "spec", "instance": "a"}, {"kind": "spec", "instance": "b"}]}}`, "MUS larger than the raw core"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := lint.ReadReport(strings.NewReader(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}
