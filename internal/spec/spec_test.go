package spec

import (
	"encoding/json"
	"strings"
	"testing"

	"engage/internal/resource"
)

// fig2JSON is the partial installation specification of Fig. 2 of the
// paper, in our concrete JSON syntax.
const fig2JSON = `[
  { "id": "server", "key": "Mac-OSX 10.6",
    "config_port": { "hostname": "localhost", "os_user_name": "root" } },
  { "id": "tomcat", "key": "Tomcat 6.0.18", "inside": { "id": "server" } },
  { "id": "openmrs", "key": "OpenMRS 1.8", "inside": { "id": "tomcat" } }
]`

func TestPartialUnmarshalFig2(t *testing.T) {
	var p Partial
	if err := json.Unmarshal([]byte(fig2JSON), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.Instances) != 3 {
		t.Fatalf("want 3 instances, got %d", len(p.Instances))
	}
	server, ok := p.Find("server")
	if !ok {
		t.Fatal("server missing")
	}
	if server.Key.Name != "Mac-OSX" || server.Key.Version != "10.6" {
		t.Errorf("server key = %v", server.Key)
	}
	if server.Config["hostname"].Str != "localhost" {
		t.Errorf("hostname = %v", server.Config["hostname"])
	}
	tomcat, _ := p.Find("tomcat")
	if tomcat.Inside != "server" {
		t.Errorf("tomcat.Inside = %q", tomcat.Inside)
	}
	openmrs, _ := p.Find("openmrs")
	if openmrs.Inside != "tomcat" {
		t.Errorf("openmrs.Inside = %q", openmrs.Inside)
	}
}

func TestPartialRoundTrip(t *testing.T) {
	var p Partial
	p.Add("server", resource.MakeKey("Mac-OSX", "10.6")).
		Set("hostname", resource.Str("localhost"))
	p.Add("db", resource.MakeKey("MySQL", "5.1")).In("server").
		Set("port", resource.IntV(3306)).
		Set("admin_password", resource.SecretV("s3cret"))

	data, err := json.Marshal(&p)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"s3cret"`) && !strings.Contains(string(data), "__secret__") {
		t.Error("secrets must be tagged in JSON")
	}
	var q Partial
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	db, ok := q.Find("db")
	if !ok {
		t.Fatal("db missing after round trip")
	}
	if db.Config["admin_password"].Kind != resource.KindSecret {
		t.Error("secret kind lost in round trip")
	}
	if db.Config["admin_password"].Str != "s3cret" {
		t.Error("secret payload lost in round trip")
	}
	if db.Config["port"].Int != 3306 {
		t.Error("int port lost in round trip")
	}
}

func TestPartialUnmarshalErrors(t *testing.T) {
	cases := []string{
		`[{"key": "X 1"}]`, // missing id
		`[{"id": "a", "key": "X", "config_port": {"v": 1.5}}]`,  // non-integer
		`[{"id": "a", "key": "X", "config_port": {"v": null}}]`, // null
		`{`, // malformed
	}
	for _, c := range cases {
		var p Partial
		if err := json.Unmarshal([]byte(c), &p); err == nil {
			t.Errorf("Unmarshal(%q) should fail", c)
		}
	}
}

func buildFullSpec() *Full {
	f := &Full{}
	f.Instances = []*Instance{
		{
			ID: "openmrs", Key: resource.MakeKey("OpenMRS", "1.8"),
			Machine: "server", Inside: "tomcat",
			Deps: []DepLink{
				{Class: resource.DepInside, Target: "tomcat"},
				{Class: resource.DepEnv, Target: "jdk", PortMap: map[string]string{"java": "java"}},
				{Class: resource.DepPeer, Target: "mysql", PortMap: map[string]string{"mysql": "mysql"}},
			},
			Input: map[string]resource.Value{
				"mysql": resource.StructV(map[string]resource.Value{"port": resource.PortV(3306)}),
			},
		},
		{
			ID: "tomcat", Key: resource.MakeKey("Tomcat", "6.0.18"),
			Machine: "server", Inside: "server",
			Deps: []DepLink{
				{Class: resource.DepInside, Target: "server"},
				{Class: resource.DepEnv, Target: "jdk"},
			},
		},
		{
			ID: "jdk", Key: resource.MakeKey("JDK", "1.6"),
			Machine: "server", Inside: "server",
			Deps: []DepLink{{Class: resource.DepInside, Target: "server"}},
		},
		{
			ID: "mysql", Key: resource.MakeKey("MySQL", "5.1"),
			Machine: "server", Inside: "server",
			Deps: []DepLink{{Class: resource.DepInside, Target: "server"}},
		},
		{
			ID: "server", Key: resource.MakeKey("Mac-OSX", "10.6"),
			Machine: "server",
			Config:  map[string]resource.Value{"hostname": resource.Str("localhost")},
		},
	}
	return f
}

func TestFullRoundTrip(t *testing.T) {
	f := buildFullSpec()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var g Full
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	if len(g.Instances) != len(f.Instances) {
		t.Fatalf("instance count mismatch: %d vs %d", len(g.Instances), len(f.Instances))
	}
	om := g.MustFind("openmrs")
	if om.Inside != "tomcat" || om.Machine != "server" {
		t.Errorf("openmrs links wrong: %+v", om)
	}
	if len(om.Deps) != 3 {
		t.Fatalf("openmrs deps lost: %v", om.Deps)
	}
	if om.Deps[1].Class != resource.DepEnv || om.Deps[1].PortMap["java"] != "java" {
		t.Errorf("env dep wrong: %+v", om.Deps[1])
	}
	mysqlIn, ok := om.Input["mysql"]
	if !ok {
		t.Fatal("input port lost")
	}
	if port, _ := mysqlIn.Field("port"); port.Int != 3306 {
		t.Error("struct input port payload lost")
	}
}

func TestFullUnmarshalBadClass(t *testing.T) {
	var g Full
	bad := `[{"id": "a", "key": "X 1", "dependencies": [{"class": "sideways", "id": "b"}]}]`
	if err := json.Unmarshal([]byte(bad), &g); err == nil {
		t.Error("unknown dependency class should fail")
	}
}

func TestDependencyIDs(t *testing.T) {
	f := buildFullSpec()
	om := f.MustFind("openmrs")
	ids := om.DependencyIDs()
	want := []string{"tomcat", "jdk", "mysql"}
	if len(ids) != len(want) {
		t.Fatalf("DependencyIDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("DependencyIDs[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
	// Machine instance has no dependencies.
	if ids := f.MustFind("server").DependencyIDs(); len(ids) != 0 {
		t.Errorf("server deps = %v", ids)
	}
}

func TestTopoOrder(t *testing.T) {
	f := buildFullSpec()
	order, err := f.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, inst := range order {
		pos[inst.ID] = i
	}
	mustBefore := [][2]string{
		{"server", "tomcat"}, {"server", "jdk"}, {"server", "mysql"},
		{"tomcat", "openmrs"}, {"jdk", "openmrs"}, {"mysql", "openmrs"},
		{"jdk", "tomcat"},
	}
	for _, mb := range mustBefore {
		if pos[mb[0]] >= pos[mb[1]] {
			t.Errorf("%s must precede %s: %v", mb[0], mb[1], order)
		}
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	f := buildFullSpec()
	o1, err := f.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := f.TopoOrder()
	for i := range o1 {
		if o1[i].ID != o2[i].ID {
			t.Fatal("TopoOrder should be deterministic")
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	f := &Full{Instances: []*Instance{
		{ID: "a", Deps: []DepLink{{Class: resource.DepPeer, Target: "b"}}},
		{ID: "b", Deps: []DepLink{{Class: resource.DepPeer, Target: "a"}}},
	}}
	if _, err := f.TopoOrder(); err == nil {
		t.Error("cycle should be detected")
	}
}

func TestTopoOrderUnknownDep(t *testing.T) {
	f := &Full{Instances: []*Instance{
		{ID: "a", Deps: []DepLink{{Class: resource.DepPeer, Target: "ghost"}}},
	}}
	if _, err := f.TopoOrder(); err == nil {
		t.Error("unknown dependency should be detected")
	}
}

func TestTopoOrderDuplicateID(t *testing.T) {
	f := &Full{Instances: []*Instance{{ID: "a"}, {ID: "a"}}}
	if _, err := f.TopoOrder(); err == nil {
		t.Error("duplicate id should be detected")
	}
}

func TestMachinesAndOnMachine(t *testing.T) {
	f := buildFullSpec()
	ms := f.Machines()
	if len(ms) != 1 || ms[0] != "server" {
		t.Errorf("Machines = %v", ms)
	}
	on := f.OnMachine("server")
	if len(on) != 5 {
		t.Errorf("OnMachine(server) = %d instances, want 5", len(on))
	}
}

func TestDownstream(t *testing.T) {
	f := buildFullSpec()
	down := f.Downstream()
	// jdk's downstream: tomcat and openmrs.
	got := down["jdk"]
	if len(got) != 2 {
		t.Fatalf("Downstream(jdk) = %v", got)
	}
	// openmrs has no dependents.
	if len(down["openmrs"]) != 0 {
		t.Errorf("Downstream(openmrs) = %v", down["openmrs"])
	}
}

func TestMachineOrderTwoHosts(t *testing.T) {
	// Production topology: database host must precede application host.
	f := &Full{Instances: []*Instance{
		{ID: "dbhost", Machine: "dbhost"},
		{ID: "apphost", Machine: "apphost"},
		{ID: "mysql", Machine: "dbhost", Inside: "dbhost",
			Deps: []DepLink{{Class: resource.DepInside, Target: "dbhost"}}},
		{ID: "app", Machine: "apphost", Inside: "apphost",
			Deps: []DepLink{
				{Class: resource.DepInside, Target: "apphost"},
				{Class: resource.DepPeer, Target: "mysql"},
			}},
	}}
	order, err := f.MachineOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "dbhost" || order[1] != "apphost" {
		t.Errorf("MachineOrder = %v", order)
	}
}

func TestMachineOrderCycle(t *testing.T) {
	f := &Full{Instances: []*Instance{
		{ID: "m1", Machine: "m1"},
		{ID: "m2", Machine: "m2"},
		{ID: "a", Machine: "m1", Inside: "m1", Deps: []DepLink{
			{Class: resource.DepInside, Target: "m1"},
			{Class: resource.DepPeer, Target: "b"},
		}},
		{ID: "b", Machine: "m2", Inside: "m2", Deps: []DepLink{
			{Class: resource.DepInside, Target: "m2"},
			{Class: resource.DepPeer, Target: "a"},
		}},
	}}
	if _, err := f.MachineOrder(); err == nil {
		t.Error("cross-machine cycle should be rejected (paper's assumption)")
	}
}

func TestLineCountAndRender(t *testing.T) {
	var p Partial
	if err := json.Unmarshal([]byte(fig2JSON), &p); err != nil {
		t.Fatal(err)
	}
	n := LineCount(&p)
	if n < 10 {
		t.Errorf("Fig. 2 spec should be >10 rendered lines, got %d", n)
	}
	s, err := Render(&p)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(s, "\n")+1 != n {
		t.Error("Render and LineCount disagree")
	}
	if !strings.Contains(s, `"Mac-OSX 10.6"`) {
		t.Error("render should contain the key")
	}
}

func TestFindMissing(t *testing.T) {
	f := &Full{}
	if _, ok := f.Find("nope"); ok {
		t.Error("Find on empty spec")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustFind should panic")
		}
	}()
	f.MustFind("nope")
}
