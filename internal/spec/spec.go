// Package spec implements Engage's installation specifications (§3.3,
// §4 of the paper): partial installation specifications written by
// users (Fig. 2) and full installation specifications produced by the
// configuration engine.
//
// A resource instance instantiates a resource type: it has a globally
// unique identifier, concrete values for all ports, and concrete links
// to other instances in place of the type's dependency constraints.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"engage/internal/resource"
)

// PartialInstance is one entry in a partial installation specification:
// a resource instance for which only a subset of dependencies (typically
// just the inside dependency) and a subset of config ports are given.
type PartialInstance struct {
	ID     string
	Key    resource.Key
	Inside string // instance ID of the container; "" for machines
	Config map[string]resource.Value
}

// Partial is a partial installation specification (§4): the main
// application components and the machines they should be installed on.
type Partial struct {
	Instances []*PartialInstance
}

// Find returns the partial instance with the given ID.
func (p *Partial) Find(id string) (*PartialInstance, bool) {
	for _, inst := range p.Instances {
		if inst.ID == id {
			return inst, true
		}
	}
	return nil, false
}

// Add appends an instance and returns it, for fluent construction.
func (p *Partial) Add(id string, key resource.Key) *PartialInstance {
	inst := &PartialInstance{ID: id, Key: key}
	p.Instances = append(p.Instances, inst)
	return inst
}

// In sets the instance's container.
func (pi *PartialInstance) In(containerID string) *PartialInstance {
	pi.Inside = containerID
	return pi
}

// Set assigns a config port value.
func (pi *PartialInstance) Set(port string, v resource.Value) *PartialInstance {
	if pi.Config == nil {
		pi.Config = make(map[string]resource.Value)
	}
	pi.Config[port] = v
	return pi
}

// DepLink is a resolved dependency of a full instance: the class, the
// chosen target instance, and the port mapping carried over from the
// resource type dependency that induced it.
type DepLink struct {
	Class          resource.DependencyClass
	Target         string // instance ID
	PortMap        map[string]string
	ReversePortMap map[string]string
}

// Instance is a complete resource instance in a full installation
// specification: all ports valued, all dependencies linked.
type Instance struct {
	ID      string
	Key     resource.Key
	Machine string // ID of the machine reached by following inside links

	Config map[string]resource.Value
	Input  map[string]resource.Value
	Output map[string]resource.Value

	Inside string // container instance ID; "" for machines
	Deps   []DepLink
}

// DependencyIDs returns the IDs of all instances this instance depends
// on (inside + environment + peer), deduplicated, in first-seen order.
func (in *Instance) DependencyIDs() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(id string) {
		if id != "" && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	add(in.Inside)
	for _, d := range in.Deps {
		add(d.Target)
	}
	return out
}

// Full is a full installation specification: a list of complete
// resource instances forming a DAG under the dependency relation.
type Full struct {
	Instances []*Instance
}

// Find returns the instance with the given ID.
func (f *Full) Find(id string) (*Instance, bool) {
	for _, inst := range f.Instances {
		if inst.ID == id {
			return inst, true
		}
	}
	return nil, false
}

// MustFind returns the instance with the given ID or panics.
func (f *Full) MustFind(id string) *Instance {
	inst, ok := f.Find(id)
	if !ok {
		panic(fmt.Sprintf("spec: no instance %q", id))
	}
	return inst
}

// Machines returns the IDs of all machine instances (no container).
func (f *Full) Machines() []string {
	var out []string
	for _, inst := range f.Instances {
		if inst.Inside == "" {
			out = append(out, inst.ID)
		}
	}
	return out
}

// OnMachine returns the instances whose resolved machine is the given
// machine ID, including the machine itself.
func (f *Full) OnMachine(machineID string) []*Instance {
	var out []*Instance
	for _, inst := range f.Instances {
		if inst.Machine == machineID {
			out = append(out, inst)
		}
	}
	return out
}

// Downstream returns, for every instance ID, the IDs of instances that
// directly depend on it (the reverse dependency relation); used by the
// runtime to evaluate ↓s guards and to shut down in reverse order.
func (f *Full) Downstream() map[string][]string {
	out := make(map[string][]string, len(f.Instances))
	for _, inst := range f.Instances {
		for _, dep := range inst.DependencyIDs() {
			out[dep] = append(out[dep], inst.ID)
		}
	}
	return out
}

// --- JSON encoding (Fig. 2 style) ---

type partialInstanceJSON struct {
	ID     string         `json:"id"`
	Key    string         `json:"key"`
	Inside *linkJSON      `json:"inside,omitempty"`
	Config map[string]any `json:"config_port,omitempty"`
}

type linkJSON struct {
	ID string `json:"id"`
}

type depLinkJSON struct {
	Class          string            `json:"class"`
	Target         string            `json:"id"`
	PortMap        map[string]string `json:"port_map,omitempty"`
	ReversePortMap map[string]string `json:"reverse_port_map,omitempty"`
}

type instanceJSON struct {
	ID      string         `json:"id"`
	Key     string         `json:"key"`
	Machine string         `json:"machine,omitempty"`
	Inside  *linkJSON      `json:"inside,omitempty"`
	Config  map[string]any `json:"config_port,omitempty"`
	Input   map[string]any `json:"input_ports,omitempty"`
	Output  map[string]any `json:"output_ports,omitempty"`
	Deps    []depLinkJSON  `json:"dependencies,omitempty"`
}

// MarshalJSON implements json.Marshaler for Partial.
func (p *Partial) MarshalJSON() ([]byte, error) {
	out := make([]partialInstanceJSON, len(p.Instances))
	for i, inst := range p.Instances {
		out[i] = partialInstanceJSON{
			ID:     inst.ID,
			Key:    inst.Key.String(),
			Config: valuesToJSON(inst.Config),
		}
		if inst.Inside != "" {
			out[i].Inside = &linkJSON{ID: inst.Inside}
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for Partial.
func (p *Partial) UnmarshalJSON(data []byte) error {
	var raw []partialInstanceJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	p.Instances = nil
	for _, r := range raw {
		if r.ID == "" {
			return fmt.Errorf("spec: instance with empty id")
		}
		cfg, err := valuesFromJSON(r.Config)
		if err != nil {
			return fmt.Errorf("spec: instance %q: %v", r.ID, err)
		}
		inst := &PartialInstance{
			ID:     r.ID,
			Key:    resource.ParseKey(r.Key),
			Config: cfg,
		}
		if r.Inside != nil {
			inst.Inside = r.Inside.ID
		}
		p.Instances = append(p.Instances, inst)
	}
	return nil
}

// MarshalJSON implements json.Marshaler for Full.
func (f *Full) MarshalJSON() ([]byte, error) {
	out := make([]instanceJSON, len(f.Instances))
	for i, inst := range f.Instances {
		ij := instanceJSON{
			ID:      inst.ID,
			Key:     inst.Key.String(),
			Machine: inst.Machine,
			Config:  valuesToJSON(inst.Config),
			Input:   valuesToJSON(inst.Input),
			Output:  valuesToJSON(inst.Output),
		}
		if inst.Inside != "" {
			ij.Inside = &linkJSON{ID: inst.Inside}
		}
		for _, d := range inst.Deps {
			ij.Deps = append(ij.Deps, depLinkJSON{
				Class:          d.Class.String(),
				Target:         d.Target,
				PortMap:        d.PortMap,
				ReversePortMap: d.ReversePortMap,
			})
		}
		out[i] = ij
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for Full.
func (f *Full) UnmarshalJSON(data []byte) error {
	var raw []instanceJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	f.Instances = nil
	for _, r := range raw {
		cfg, err := valuesFromJSON(r.Config)
		if err != nil {
			return fmt.Errorf("spec: instance %q config: %v", r.ID, err)
		}
		in, err := valuesFromJSON(r.Input)
		if err != nil {
			return fmt.Errorf("spec: instance %q input: %v", r.ID, err)
		}
		out, err := valuesFromJSON(r.Output)
		if err != nil {
			return fmt.Errorf("spec: instance %q output: %v", r.ID, err)
		}
		inst := &Instance{
			ID:      r.ID,
			Key:     resource.ParseKey(r.Key),
			Machine: r.Machine,
			Config:  cfg,
			Input:   in,
			Output:  out,
		}
		if r.Inside != nil {
			inst.Inside = r.Inside.ID
		}
		for _, d := range r.Deps {
			var class resource.DependencyClass
			switch d.Class {
			case "inside":
				class = resource.DepInside
			case "environment":
				class = resource.DepEnv
			case "peer":
				class = resource.DepPeer
			default:
				return fmt.Errorf("spec: instance %q: unknown dependency class %q", r.ID, d.Class)
			}
			inst.Deps = append(inst.Deps, DepLink{
				Class:          class,
				Target:         d.Target,
				PortMap:        d.PortMap,
				ReversePortMap: d.ReversePortMap,
			})
		}
		f.Instances = append(f.Instances, inst)
	}
	return nil
}

// LineCount renders the specification in canonical indented JSON and
// counts its lines. The paper reports specification sizes in lines
// (e.g., OpenMRS: partial 22 lines, full 204 lines); this is the metric
// behind experiments E1, E6, E8, and E10.
func LineCount(v json.Marshaler) int {
	raw, err := v.MarshalJSON()
	if err != nil {
		return 0
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return 0
	}
	return strings.Count(buf.String(), "\n") + 1
}

// Render returns the canonical indented JSON form of a specification.
func Render(v json.Marshaler) (string, error) {
	raw, err := v.MarshalJSON()
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, raw, "", "  "); err != nil {
		return "", err
	}
	return buf.String(), nil
}
