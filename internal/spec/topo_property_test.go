package spec

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"engage/internal/resource"
)

// randomDAGSpec builds a random full specification whose dependency
// graph is a DAG by construction: instance i may only depend on
// instances with smaller indices. Machines are a random subset of the
// roots.
func randomDAGSpec(rng *rand.Rand, n int) *Full {
	if n < 1 {
		n = 1
	}
	f := &Full{}
	for i := 0; i < n; i++ {
		inst := &Instance{
			ID:  fmt.Sprintf("i%02d", i),
			Key: resource.MakeKey("T", "1"),
		}
		if i > 0 {
			// Container: a random earlier machine-rooted instance.
			c := rng.Intn(i)
			inst.Inside = fmt.Sprintf("i%02d", c)
			inst.Deps = append(inst.Deps, DepLink{Class: resource.DepInside, Target: inst.Inside})
			// A few extra peer/env edges to earlier instances.
			extra := rng.Intn(3)
			for e := 0; e < extra; e++ {
				target := fmt.Sprintf("i%02d", rng.Intn(i))
				if target == inst.Inside {
					continue
				}
				inst.Deps = append(inst.Deps, DepLink{Class: resource.DepPeer, Target: target})
			}
		}
		f.Instances = append(f.Instances, inst)
	}
	// Resolve machines by walking inside chains.
	byID := make(map[string]*Instance)
	for _, inst := range f.Instances {
		byID[inst.ID] = inst
	}
	for _, inst := range f.Instances {
		cur := inst
		for cur.Inside != "" {
			cur = byID[cur.Inside]
		}
		inst.Machine = cur.ID
	}
	return f
}

// Property: TopoOrder of a random DAG places every instance after all
// of its dependencies, includes every instance exactly once, and is
// deterministic.
func TestTopoOrderRandomDAGs(t *testing.T) {
	check := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sizeRaw%40) + 1
		f := randomDAGSpec(rng, n)

		order, err := f.TopoOrder()
		if err != nil {
			return false
		}
		if len(order) != n {
			return false
		}
		pos := make(map[string]int, n)
		for i, inst := range order {
			if _, dup := pos[inst.ID]; dup {
				return false
			}
			pos[inst.ID] = i
		}
		for _, inst := range f.Instances {
			for _, dep := range inst.DependencyIDs() {
				if pos[dep] >= pos[inst.ID] {
					return false
				}
			}
		}
		order2, err := f.TopoOrder()
		if err != nil {
			return false
		}
		for i := range order {
			if order[i].ID != order2[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: MachineOrder on random DAG specs linearizes all machines and
// respects cross-machine dependencies.
func TestMachineOrderRandomDAGs(t *testing.T) {
	check := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sizeRaw%30) + 2
		f := randomDAGSpec(rng, n)

		order, err := f.MachineOrder()
		if err != nil {
			// Random DAGs never create cross-machine cycles because
			// dependencies always point to smaller indices whose
			// machines are also smaller-rooted — an error is a bug.
			return false
		}
		pos := make(map[string]int, len(order))
		for i, m := range order {
			pos[m] = i
		}
		if len(order) != len(f.Machines()) {
			return false
		}
		byID := make(map[string]*Instance)
		for _, inst := range f.Instances {
			byID[inst.ID] = inst
		}
		for _, inst := range f.Instances {
			for _, dep := range inst.DependencyIDs() {
				m1, m2 := byID[dep].Machine, inst.Machine
				if m1 != m2 && pos[m1] >= pos[m2] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Downstream is the exact inverse of DependencyIDs.
func TestDownstreamInverseProperty(t *testing.T) {
	check := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := randomDAGSpec(rng, int(sizeRaw%30)+1)
		down := f.Downstream()
		// Forward check: every dependency edge appears in downstream.
		count := 0
		for _, inst := range f.Instances {
			for _, dep := range inst.DependencyIDs() {
				found := false
				for _, d := range down[dep] {
					if d == inst.ID {
						found = true
						break
					}
				}
				if !found {
					return false
				}
				count++
			}
		}
		// Reverse check: total edge counts match.
		total := 0
		for _, ds := range down {
			total += len(ds)
		}
		return total == count
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
