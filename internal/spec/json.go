package spec

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"engage/internal/resource"
)

// JSON encoding of resource.Value: scalars map to native JSON types;
// structs to objects; lists to arrays. Secrets are wrapped in a
// {"__secret__": "…"} object so they survive a round trip; TCP ports are
// plain numbers (indistinguishable from ints by design — the port kind
// is re-established by the resource type when values are checked).

// valueToJSON converts a resource.Value to a json.Marshal-able tree.
func valueToJSON(v resource.Value) any {
	switch v.Kind {
	case resource.KindString:
		return v.Str
	case resource.KindSecret:
		return map[string]any{"__secret__": v.Str}
	case resource.KindInt, resource.KindPort:
		return v.Int
	case resource.KindBool:
		return v.Bool
	case resource.KindStruct:
		m := make(map[string]any, len(v.Fields))
		for n, f := range v.Fields {
			m[n] = valueToJSON(f)
		}
		return m
	case resource.KindList:
		l := make([]any, len(v.List))
		for i, e := range v.List {
			l[i] = valueToJSON(e)
		}
		return l
	default:
		return nil
	}
}

// valueFromJSON converts a decoded JSON tree back to a resource.Value.
func valueFromJSON(x any) (resource.Value, error) {
	switch t := x.(type) {
	case string:
		return resource.Str(t), nil
	case bool:
		return resource.BoolV(t), nil
	case float64:
		if t != math.Trunc(t) {
			return resource.Value{}, fmt.Errorf("non-integer number %v not supported", t)
		}
		return resource.IntV(int(t)), nil
	case map[string]any:
		if s, ok := t["__secret__"]; ok && len(t) == 1 {
			str, ok := s.(string)
			if !ok {
				return resource.Value{}, fmt.Errorf("__secret__ payload must be a string")
			}
			return resource.SecretV(str), nil
		}
		fields := make(map[string]resource.Value, len(t))
		for n, f := range t {
			v, err := valueFromJSON(f)
			if err != nil {
				return resource.Value{}, fmt.Errorf("field %q: %v", n, err)
			}
			fields[n] = v
		}
		return resource.StructV(fields), nil
	case []any:
		elems := make([]resource.Value, len(t))
		for i, e := range t {
			v, err := valueFromJSON(e)
			if err != nil {
				return resource.Value{}, fmt.Errorf("element %d: %v", i, err)
			}
			elems[i] = v
		}
		return resource.ListV(elems...), nil
	case nil:
		return resource.Value{}, fmt.Errorf("null values not supported")
	default:
		return resource.Value{}, fmt.Errorf("unsupported JSON value %T", x)
	}
}

func valuesToJSON(m map[string]resource.Value) map[string]any {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]any, len(m))
	for n, v := range m {
		out[n] = valueToJSON(v)
	}
	return out
}

func valuesFromJSON(m map[string]any) (map[string]resource.Value, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(map[string]resource.Value, len(m))
	for n, x := range m {
		v, err := valueFromJSON(x)
		if err != nil {
			return nil, fmt.Errorf("port %q: %v", n, err)
		}
		out[n] = v
	}
	return out, nil
}

// marshalIndentCanonical marshals with sorted keys (encoding/json sorts
// map keys already) and two-space indentation; the canonical form backs
// the line-count metrics reported by the paper (partial vs full spec
// sizes).
func marshalIndentCanonical(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}

// sortedNames returns map keys in sorted order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
