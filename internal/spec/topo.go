package spec

import (
	"fmt"
	"sort"
)

// TopoOrder returns the instances of a full specification in dependency
// order: every instance appears after all instances it depends on. Ties
// are broken by instance ID so the order is deterministic. An error is
// returned if the dependency relation is cyclic or references unknown
// instances (both of which the type checker rejects, but specifications
// can also arrive from JSON).
func (f *Full) TopoOrder() ([]*Instance, error) {
	byID := make(map[string]*Instance, len(f.Instances))
	for _, inst := range f.Instances {
		if byID[inst.ID] != nil {
			return nil, fmt.Errorf("spec: duplicate instance id %q", inst.ID)
		}
		byID[inst.ID] = inst
	}

	indeg := make(map[string]int, len(f.Instances))
	dependents := make(map[string][]string, len(f.Instances))
	for _, inst := range f.Instances {
		deps := inst.DependencyIDs()
		for _, d := range deps {
			if byID[d] == nil {
				return nil, fmt.Errorf("spec: instance %q depends on unknown instance %q", inst.ID, d)
			}
			dependents[d] = append(dependents[d], inst.ID)
		}
		indeg[inst.ID] = len(deps)
	}

	// Kahn's algorithm with a sorted ready set for determinism.
	var ready []string
	for id, n := range indeg {
		if n == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready)

	out := make([]*Instance, 0, len(f.Instances))
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, byID[id])
		var unlocked []string
		for _, dep := range dependents[id] {
			indeg[dep]--
			if indeg[dep] == 0 {
				unlocked = append(unlocked, dep)
			}
		}
		sort.Strings(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(out) != len(f.Instances) {
		var stuck []string
		for id, n := range indeg {
			if n > 0 {
				stuck = append(stuck, id)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("spec: dependency cycle involving %v", stuck)
	}
	return out, nil
}

func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// MachineOrder partially orders the machines of a specification for
// multi-host deployment (§5.2): machine m1 precedes m2 if some instance
// on m2 depends on an instance on m1. An error is returned when the
// induced relation is cyclic, i.e. the paper's simplifying assumption
// (machines can be partially ordered) is violated.
func (f *Full) MachineOrder() ([]string, error) {
	machines := f.Machines()
	isMachine := make(map[string]bool, len(machines))
	for _, m := range machines {
		isMachine[m] = true
	}
	byID := make(map[string]*Instance, len(f.Instances))
	for _, inst := range f.Instances {
		byID[inst.ID] = inst
	}

	// edges[a][b]: machine a must come before machine b.
	edges := make(map[string]map[string]bool, len(machines))
	indeg := make(map[string]int, len(machines))
	for _, m := range machines {
		edges[m] = make(map[string]bool)
		indeg[m] = 0
	}
	for _, inst := range f.Instances {
		for _, depID := range inst.DependencyIDs() {
			dep := byID[depID]
			if dep == nil {
				return nil, fmt.Errorf("spec: instance %q depends on unknown instance %q", inst.ID, depID)
			}
			m1, m2 := machineOf(dep), machineOf(inst)
			if m1 == "" || m2 == "" || m1 == m2 {
				continue
			}
			if !edges[m1][m2] {
				edges[m1][m2] = true
				indeg[m2]++
			}
		}
	}

	var ready []string
	for _, m := range machines {
		if indeg[m] == 0 {
			ready = append(ready, m)
		}
	}
	sort.Strings(ready)
	var out []string
	for len(ready) > 0 {
		m := ready[0]
		ready = ready[1:]
		out = append(out, m)
		var unlocked []string
		for n := range edges[m] {
			indeg[n]--
			if indeg[n] == 0 {
				unlocked = append(unlocked, n)
			}
		}
		sort.Strings(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(out) != len(machines) {
		return nil, fmt.Errorf("spec: machines cannot be partially ordered (cross-machine dependency cycle)")
	}
	return out, nil
}

func machineOf(inst *Instance) string {
	if inst.Machine != "" {
		return inst.Machine
	}
	if inst.Inside == "" {
		return inst.ID // a machine is its own machine
	}
	return ""
}
