package pkgmgr

import (
	"testing"
	"time"

	"engage/internal/machine"
)

func setup(t *testing.T) (*machine.World, *machine.Machine, *Index) {
	t.Helper()
	w := machine.NewWorld()
	m, err := w.AddMachine("server", "ubuntu-12.04")
	if err != nil {
		t.Fatal(err)
	}
	idx := NewIndex()
	idx.Publish(&Package{
		Name: "tomcat", Version: "6.0.18",
		Files:        map[string]string{"/opt/tomcat/bin/catalina.sh": "#!/bin/sh", "/opt/tomcat/conf/server.xml": "<Server/>"},
		DownloadTime: 3 * time.Minute,
		InstallTime:  1 * time.Minute,
	})
	idx.Publish(&Package{
		Name: "mysql", Version: "5.1",
		Files:        map[string]string{"/usr/sbin/mysqld": "bin"},
		DownloadTime: 2 * time.Minute,
		InstallTime:  30 * time.Second,
	})
	return w, m, idx
}

func TestInstallWritesFilesAndAdvancesClock(t *testing.T) {
	w, m, idx := setup(t)
	mgr := NewManager(idx, nil, m)
	t0 := w.Clock.Now()
	if err := mgr.Install("tomcat", "6.0.18"); err != nil {
		t.Fatal(err)
	}
	if !m.Exists("/opt/tomcat/bin/catalina.sh") {
		t.Error("package files not written")
	}
	if got := w.Clock.Since(t0); got != 4*time.Minute {
		t.Errorf("install should take download+install = 4m, took %v", got)
	}
	v, ok := mgr.Installed("tomcat")
	if !ok || v != "6.0.18" {
		t.Errorf("Installed = %q, %v", v, ok)
	}
	if list := mgr.List(); len(list) != 1 || list[0] != "tomcat 6.0.18" {
		t.Errorf("List = %v", list)
	}
}

func TestInstallIdempotentSameVersion(t *testing.T) {
	w, m, idx := setup(t)
	mgr := NewManager(idx, nil, m)
	if err := mgr.Install("mysql", "5.1"); err != nil {
		t.Fatal(err)
	}
	t0 := w.Clock.Now()
	if err := mgr.Install("mysql", "5.1"); err != nil {
		t.Fatal(err)
	}
	if w.Clock.Since(t0) != 0 {
		t.Error("reinstall of same version should be free")
	}
}

func TestInstallVersionConflict(t *testing.T) {
	_, m, idx := setup(t)
	idx.Publish(&Package{Name: "mysql", Version: "5.5"})
	mgr := NewManager(idx, nil, m)
	if err := mgr.Install("mysql", "5.1"); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Install("mysql", "5.5"); err == nil {
		t.Error("version conflict should error")
	}
}

func TestInstallUnknownPackage(t *testing.T) {
	_, m, idx := setup(t)
	mgr := NewManager(idx, nil, m)
	if err := mgr.Install("ghost", "1.0"); err == nil {
		t.Error("unknown package should error")
	}
}

func TestCacheCutsDownloadTime(t *testing.T) {
	// The Jasper experiment shape: internet install vs cached install.
	w, m, idx := setup(t)
	cache := NewCache()
	mgr := NewManager(idx, cache, m)
	t0 := w.Clock.Now()
	if err := mgr.Install("tomcat", "6.0.18"); err != nil {
		t.Fatal(err)
	}
	cold := w.Clock.Since(t0)

	// Second machine, same cache.
	m2, err := w.AddMachine("server2", "ubuntu-12.04")
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := NewManager(idx, cache, m2)
	t1 := w.Clock.Now()
	if err := mgr2.Install("tomcat", "6.0.18"); err != nil {
		t.Fatal(err)
	}
	warm := w.Clock.Since(t1)

	if cold != 4*time.Minute || warm != 1*time.Minute {
		t.Errorf("cold=%v warm=%v; want 4m/1m", cold, warm)
	}
	if cache.Len() != 1 {
		t.Errorf("cache entries = %d", cache.Len())
	}
}

func TestNilCacheAlwaysDownloads(t *testing.T) {
	w, m, idx := setup(t)
	mgr := NewManager(idx, nil, m)
	if err := mgr.Install("mysql", "5.1"); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Remove("mysql"); err != nil {
		t.Fatal(err)
	}
	t0 := w.Clock.Now()
	if err := mgr.Install("mysql", "5.1"); err != nil {
		t.Fatal(err)
	}
	if w.Clock.Since(t0) != 150*time.Second {
		t.Errorf("nil cache must re-download: %v", w.Clock.Since(t0))
	}
}

func TestRemove(t *testing.T) {
	_, m, idx := setup(t)
	mgr := NewManager(idx, nil, m)
	if err := mgr.Install("tomcat", "6.0.18"); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Remove("tomcat"); err != nil {
		t.Fatal(err)
	}
	if m.Exists("/opt/tomcat/conf/server.xml") {
		t.Error("remove should delete package files")
	}
	if _, ok := mgr.Installed("tomcat"); ok {
		t.Error("package still recorded after remove")
	}
	if err := mgr.Remove("tomcat"); err == nil {
		t.Error("double remove should error")
	}
}

func TestIndexPackages(t *testing.T) {
	_, _, idx := setup(t)
	pkgs := idx.Packages()
	if len(pkgs) != 2 {
		t.Fatalf("Packages = %d", len(pkgs))
	}
	if pkgs[0].Name != "mysql" || pkgs[1].Name != "tomcat" {
		t.Errorf("Packages order wrong: %v, %v", pkgs[0].Name, pkgs[1].Name)
	}
	if _, ok := idx.Lookup("tomcat", "6.0.18"); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := idx.Lookup("tomcat", "9.9"); ok {
		t.Error("wrong version should not resolve")
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	if c.Has("x", "1") {
		t.Error("nil cache has nothing")
	}
	c.Put("x", "1") // must not panic
	if c.Len() != 0 {
		t.Error("nil cache len")
	}
}
