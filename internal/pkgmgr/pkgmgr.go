// Package pkgmgr implements a simulated OS-level package manager
// (OSLPM) — the dpkg/RPM/apt building block the paper describes Engage
// drivers as using. Packages live in a shared index with simulated
// download and install durations; a local file cache (the paper's
// "local file cache" that cuts the Jasper install from 17 to 5 minutes)
// makes repeat downloads free.
package pkgmgr

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"engage/internal/machine"
)

// Package is an installable artifact in the index.
type Package struct {
	Name    string
	Version string
	// Files are written to the machine on install, keyed by path.
	Files map[string]string
	// DownloadTime is the simulated internet download duration.
	DownloadTime time.Duration
	// InstallTime is the simulated unpack/configure duration.
	InstallTime time.Duration
}

func (p *Package) key() string { return p.Name + " " + p.Version }

// Index is a package repository shared by all machines in a deployment.
type Index struct {
	mu   sync.Mutex
	pkgs map[string]*Package
}

// NewIndex returns an empty index.
func NewIndex() *Index { return &Index{pkgs: make(map[string]*Package)} }

// Publish adds or replaces a package in the index.
func (i *Index) Publish(p *Package) {
	i.mu.Lock()
	i.pkgs[p.key()] = p
	i.mu.Unlock()
}

// Lookup finds a package by name and version.
func (i *Index) Lookup(name, version string) (*Package, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	p, ok := i.pkgs[name+" "+version]
	return p, ok
}

// Packages lists index contents sorted by key.
func (i *Index) Packages() []*Package {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]*Package, 0, len(i.pkgs))
	for _, p := range i.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].key() < out[b].key() })
	return out
}

// Cache is a local file cache of downloaded packages, shared across the
// machines of a site.
type Cache struct {
	mu      sync.Mutex
	entries map[string]bool
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{entries: make(map[string]bool)} }

// Has reports whether a package is cached.
func (c *Cache) Has(name, version string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[name+" "+version]
}

// Put records a package as cached.
func (c *Cache) Put(name, version string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.entries[name+" "+version] = true
	c.mu.Unlock()
}

// Len reports the number of cached packages.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Manager installs packages from an index onto one machine. A nil Cache
// means every install downloads from the simulated internet. Durations
// are charged to Sink when set (the deployment engine's per-instance
// accounting), otherwise they advance the world clock directly.
//
// The installed-package database lives on the machine's filesystem
// (manifest files under /var/lib/engage-pkg, like dpkg's database), so
// any Manager for the same machine sees the same state — including
// Managers created by later deployments of the same site, and
// snapshot/restore during upgrades rolls the package database back with
// everything else.
type Manager struct {
	Index   *Index
	Cache   *Cache
	Machine *machine.Machine
	Sink    machine.TimeSink
}

// NewManager returns a package manager for a machine.
func NewManager(idx *Index, cache *Cache, m *machine.Machine) *Manager {
	return &Manager{Index: idx, Cache: cache, Machine: m}
}

// Install downloads (or pulls from cache) and installs a package,
// advancing the simulated clock by the corresponding durations and
// writing the package's files. Installing an already-installed version
// is a fast no-op; installing a different version of an installed
// package is an error (use Remove first).
func (mgr *Manager) Install(name, version string) error {
	if v, ok := mgr.Installed(name); ok {
		if v == version {
			return nil
		}
		return fmt.Errorf("pkgmgr: %s %s already installed on %s (want %s); remove it first",
			name, v, mgr.Machine.Name, version)
	}

	p, ok := mgr.Index.Lookup(name, version)
	if !ok {
		return fmt.Errorf("pkgmgr: package %q version %q not in index", name, version)
	}
	if err := mgr.Machine.Inject(machine.Op{Kind: machine.OpPkgInstall, Name: name}); err != nil {
		return fmt.Errorf("pkgmgr: install %s %s on %s: %w", name, version, mgr.Machine.Name, err)
	}

	if mgr.Cache.Has(name, version) {
		// Cached: local copy, no download.
	} else {
		mgr.charge(p.DownloadTime)
		mgr.Cache.Put(name, version)
	}
	mgr.charge(p.InstallTime)
	for path, content := range p.Files {
		if err := mgr.Machine.WriteFile(path, content); err != nil {
			return err
		}
	}
	return mgr.Machine.WriteFile(manifestPath(name), version)
}

// Remove uninstalls a package, deleting its files.
func (mgr *Manager) Remove(name string) error {
	version, ok := mgr.Installed(name)
	if !ok {
		return fmt.Errorf("pkgmgr: package %q not installed on %s", name, mgr.Machine.Name)
	}
	if p, ok := mgr.Index.Lookup(name, version); ok {
		for path := range p.Files {
			mgr.Machine.RemoveFile(path)
		}
	}
	mgr.Machine.RemoveFile(manifestPath(name))
	return nil
}

// Installed reports the installed version of a package by consulting
// the machine's package database.
func (mgr *Manager) Installed(name string) (string, bool) {
	v, err := mgr.Machine.ReadFile(manifestPath(name))
	if err != nil {
		return "", false
	}
	return v, true
}

// List returns installed "name version" strings, sorted.
func (mgr *Manager) List() []string {
	var out []string
	for _, p := range mgr.Machine.List(manifestDir) {
		name := strings.TrimSuffix(strings.TrimPrefix(p, manifestDir+"/"), ".manifest")
		if v, err := mgr.Machine.ReadFile(p); err == nil {
			out = append(out, name+" "+v)
		}
	}
	sort.Strings(out)
	return out
}

func (mgr *Manager) charge(d time.Duration) {
	if mgr.Sink != nil {
		mgr.Sink.Charge(d)
		return
	}
	mgr.Machine.Clock().Advance(d)
}

const manifestDir = "/var/lib/engage-pkg"

func manifestPath(name string) string {
	return manifestDir + "/" + name + ".manifest"
}
