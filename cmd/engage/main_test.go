package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCapture runs the CLI with stdout captured to a file.
func runCapture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const cliRDL = `
abstract resource "Server" {}
resource "Box 1" extends "Server" {}
resource "Svc 1" {
    inside "Server"
    config { port: tcp_port = 9000 }
    output { svc: struct { port: tcp_port } = { port: config.port } }
}
resource "App 1" {
    inside "Server"
    input { svc: struct { port: tcp_port } }
    peer "Svc 1" { svc -> svc }
}`

const cliPartial = `[
  {"id": "box", "key": "Box 1"},
  {"id": "app", "key": "App 1", "inside": {"id": "box"}}
]`

// fig2Partial for the bundled library.
const cliLibPartial = `[
  {"id": "server", "key": "Mac-OSX 10.6"},
  {"id": "tomcat", "key": "Tomcat 6.0.18", "inside": {"id": "server"}},
  {"id": "openmrs", "key": "OpenMRS 1.8", "inside": {"id": "tomcat"}}
]`

func TestCmdCheck(t *testing.T) {
	rdlFile := writeFile(t, "stack.rdl", cliRDL)
	out, err := runCapture(t, "check", rdlFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4 resource types are well-formed") {
		t.Errorf("check output: %s", out)
	}
	if !strings.Contains(out, "abstract") || !strings.Contains(out, "concrete") {
		t.Errorf("check should list kinds: %s", out)
	}
}

func TestCmdCheckBad(t *testing.T) {
	rdlFile := writeFile(t, "bad.rdl", `resource "A 1" { inside "Ghost" }`)
	if _, err := runCapture(t, "check", rdlFile); err == nil {
		t.Error("bad RDL should fail check")
	}
	if _, err := runCapture(t, "check"); err == nil {
		t.Error("check without files should fail")
	}
	if _, err := runCapture(t, "check", "/nonexistent.rdl"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestCmdSolve(t *testing.T) {
	rdlFile := writeFile(t, "stack.rdl", cliRDL)
	partial := writeFile(t, "p.json", cliPartial)
	out, err := runCapture(t, "solve", "-rdl", rdlFile, "-partial", partial)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"Svc 1"`) {
		t.Errorf("solution should include the derived Svc instance: %s", out)
	}
	if !strings.Contains(out, "// full:") || !strings.Contains(out, "3 instances") {
		t.Errorf("stats footer wrong: %s", out)
	}
}

func TestCmdSolveLibrary(t *testing.T) {
	partial := writeFile(t, "p.json", cliLibPartial)
	out, err := runCapture(t, "solve", "-partial", partial, "-solver", "dpll", "-encoding", "ladder")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MySQL 5.1") {
		t.Errorf("library solve should derive MySQL: %s", out)
	}
}

func TestCmdSolveErrors(t *testing.T) {
	if _, err := runCapture(t, "solve"); err == nil {
		t.Error("missing -partial should fail")
	}
	partial := writeFile(t, "p.json", cliLibPartial)
	if _, err := runCapture(t, "solve", "-partial", partial, "-solver", "z3"); err == nil {
		t.Error("unknown solver should fail")
	}
	if _, err := runCapture(t, "solve", "-partial", partial, "-encoding", "magic"); err == nil {
		t.Error("unknown encoding should fail")
	}
	badJSON := writeFile(t, "bad.json", "{")
	if _, err := runCapture(t, "solve", "-partial", badJSON); err == nil {
		t.Error("bad JSON should fail")
	}
}

func TestCmdExplain(t *testing.T) {
	partial := writeFile(t, "p.json", cliLibPartial)
	out, err := runCapture(t, "explain", "-partial", partial)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hypergraph nodes:", "hyperedges:", "p cnf", "--environment-->"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdExplainDot(t *testing.T) {
	partial := writeFile(t, "p.json", cliLibPartial)
	out, err := runCapture(t, "explain", "-partial", partial, "-dot")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph engage", "peripheries=2", "style=dashed", "shape=point"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestCmdDeploy(t *testing.T) {
	partial := writeFile(t, "p.json", cliLibPartial)
	out, err := runCapture(t, "deploy", "-partial", partial)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "deployed 5 instances") {
		t.Errorf("deploy output: %s", out)
	}
	if !strings.Contains(out, "active") {
		t.Errorf("status missing: %s", out)
	}
}

func TestCmdDeployParallelMultihost(t *testing.T) {
	partial := writeFile(t, "p.json", cliLibPartial)
	out, err := runCapture(t, "deploy", "-partial", partial, "-parallel", "-multihost")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "across machines") {
		t.Errorf("multihost output: %s", out)
	}
}

func TestCmdAlternatives(t *testing.T) {
	partial := writeFile(t, "p.json", cliLibPartial)
	out, err := runCapture(t, "alternatives", "-partial", partial)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 alternative full installation specification(s)") {
		t.Errorf("alternatives output: %s", out)
	}
	if !strings.Contains(out, "JDK 1.6") || !strings.Contains(out, "JRE 1.6") {
		t.Errorf("both Java choices should appear: %s", out)
	}
}

func TestCmdFmt(t *testing.T) {
	rdlFile := writeFile(t, "stack.rdl", cliRDL)
	out, err := runCapture(t, "fmt", rdlFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `resource "App 1"`) || !strings.Contains(out, "svc -> svc") {
		t.Errorf("fmt output: %s", out)
	}
	if _, err := runCapture(t, "fmt"); err == nil {
		t.Error("fmt without files should fail")
	}
}

func TestCmdDemo(t *testing.T) {
	out, err := runCapture(t, "demo")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"partial installation specification", "configuration engine", "deployed in", "mysql"} {
		if !strings.Contains(out, want) {
			t.Errorf("demo output missing %q", want)
		}
	}
}

func TestCmdUnknownAndHelp(t *testing.T) {
	if _, err := runCapture(t, "bogus"); err == nil {
		t.Error("unknown subcommand should fail")
	}
	if _, err := runCapture(t); err == nil {
		t.Error("no subcommand should fail")
	}
	out, err := runCapture(t, "help")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "usage: engage") {
		t.Errorf("help output: %s", out)
	}
}

func TestCmdSolveMinimal(t *testing.T) {
	partial := writeFile(t, "p.json", cliLibPartial)
	out, err := runCapture(t, "solve", "-partial", partial, "-minimal")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "5 instances") {
		t.Errorf("minimal solve output: %s", out)
	}
}
