package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"engage/internal/config"
	"engage/internal/resource"
	"engage/internal/sat"
	"engage/internal/spec"
	"engage/internal/stack"
)

// TestCmdVerifySatSpec: a satisfiable spec's model and configured plan
// both certify against the bundled library.
func TestCmdVerifySatSpec(t *testing.T) {
	specFile := writeFile(t, "p.json", cliLibPartial)
	out, err := runCapture(t, "verify", "-partial", specFile)
	if err != nil {
		t.Fatalf("verify: %v\n%s", err, out)
	}
	for _, want := range []string{"certified: model for", "certified: configured plan for"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCmdVerifyUnsatSpec: the canonical unsat fixture's MUS story is
// certified — proof replayed, minimality witnessed — and exits zero.
func TestCmdVerifyUnsatSpec(t *testing.T) {
	rdlFile := writeFile(t, "stack.rdl", lintUnsatRDL)
	specFile := writeFile(t, "spec.json", lintUnsatPartial)
	dump := filepath.Join(t.TempDir(), "proof.jsonl")
	out, err := runCapture(t, "verify", "-rdl", rdlFile, "-partial", specFile, "-dump-proof", dump)
	if err != nil {
		t.Fatalf("verify of a certified unsat story should exit zero: %v\n%s", err, out)
	}
	if !strings.Contains(out, "certified: unsat story for") {
		t.Errorf("output missing unsat certification:\n%s", out)
	}
	if !strings.Contains(out, "MUS certified") {
		t.Errorf("output missing MUS detail:\n%s", out)
	}
	// The dumped artifacts are self-contained: proof + MUS-pinned
	// formula replay end-to-end without the solver or the spec.
	out, err = runCapture(t, "verify", "-proof", dump, "-cnf", dump+".cnf")
	if err != nil {
		t.Fatalf("dumped proof artifacts do not replay: %v\n%s", err, out)
	}
	if !strings.Contains(out, "certified: UNSAT proof") {
		t.Errorf("output missing proof replay certification:\n%s", out)
	}
}

// configuredLib resolves cliLibPartial against the bundled library —
// the same registry `verify` loads when -rdl is empty.
func configuredLib(t *testing.T) *spec.Full {
	t.Helper()
	reg, _, err := loadRegistry("", nil)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := loadPartial(writeFile(t, "p.json", cliLibPartial))
	if err != nil {
		t.Fatal(err)
	}
	full, err := config.New(reg).Configure(partial)
	if err != nil {
		t.Fatal(err)
	}
	return full
}

// TestCmdVerifyTamperedFull: corrupting a port value in a solved full
// specification is refuted with a plan-port diagnostic and exit 1.
func TestCmdVerifyTamperedFull(t *testing.T) {
	full := configuredLib(t)
	render := func(name string) string {
		t.Helper()
		text, err := spec.Render(full)
		if err != nil {
			t.Fatal(err)
		}
		return writeFile(t, name, text)
	}
	specFile := writeFile(t, "spec.json", cliLibPartial)
	if out, err := runCapture(t, "verify", "-partial", specFile, "-full", render("full.json")); err != nil {
		t.Fatalf("genuine full spec refuted: %v\n%s", err, out)
	}

	om := full.MustFind("openmrs")
	keys := make([]string, 0, len(om.Output))
	for k := range om.Output {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		t.Fatal("fixture changed: openmrs has no output ports")
	}
	om.Output[keys[0]] = resource.Str("http://evil.example")
	out, err := runCapture(t, "verify", "-partial", specFile, "-full", render("bad.json"))
	if err == nil {
		t.Fatalf("tampered full spec must be refuted:\n%s", out)
	}
	if !strings.Contains(out, "error[plan-port]") || !strings.Contains(out, "REFUTED") {
		t.Errorf("output missing plan-port refutation:\n%s", out)
	}
}

// TestCmdVerifyProof: a solver proof for a DIMACS formula certifies;
// injecting a non-RUP lemma refutes it.
func TestCmdVerifyProof(t *testing.T) {
	f := sat.NewFormula(3)
	f.Add(1, 2)
	f.Add(1, -2)
	f.Add(-1, 3)
	f.Add(-1, -3)
	res := (&sat.CDCL{LogProof: true}).Solve(f)
	if res.Status != sat.Unsat {
		t.Fatalf("fixture formula should be UNSAT, got %v", res.Status)
	}
	cnfFile := writeFile(t, "f.cnf", sat.Dimacs(f))
	var b strings.Builder
	if err := res.Proof.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	proofFile := writeFile(t, "proof.jsonl", b.String())
	out, err := runCapture(t, "verify", "-proof", proofFile, "-cnf", cnfFile)
	if err != nil {
		t.Fatalf("genuine proof refuted: %v\n%s", err, out)
	}
	if !strings.Contains(out, "certified: UNSAT proof") {
		t.Errorf("output missing proof certification:\n%s", out)
	}

	bad := writeFile(t, "bad.jsonl", `{"op":"a","lits":[7]}`+"\n"+b.String())
	out, err = runCapture(t, "verify", "-proof", bad, "-cnf", cnfFile)
	if err == nil {
		t.Fatalf("injected lemma must be refuted:\n%s", out)
	}
	if !strings.Contains(out, "not RUP") {
		t.Errorf("output missing RUP refutation:\n%s", out)
	}
}

// TestCmdVerifyStack: a consistent record certifies; a stale manifest
// is refuted as plan-binding.
func TestCmdVerifyStack(t *testing.T) {
	full := configuredLib(t)
	rec := &stack.Stack{Name: "web", Version: 1, Desired: full, Bindings: map[string]stack.Binding{}}
	for _, inst := range full.Instances {
		rec.Bindings[inst.ID] = stack.Binding{
			Instance:     inst.ID,
			Machine:      inst.Machine,
			ManifestPath: stack.ManifestPath("web", inst.ID),
			Manifest:     stack.ManifestFor(inst),
		}
	}
	write := func(name string, s *stack.Stack) string {
		t.Helper()
		p := filepath.Join(t.TempDir(), name)
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := s.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		return p
	}

	specFile := writeFile(t, "p.json", cliLibPartial)
	good := write("good.json", rec)
	out, err := runCapture(t, "verify", "-partial", specFile, "-stack", good, "-json")
	if err != nil {
		t.Fatalf("consistent record refuted: %v\n%s", err, out)
	}
	var rep struct {
		Claims []struct{ Claim, Verdict string } `json:"claims"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON report: %v\n%s", err, out)
	}
	// Solve certification (model + configured plan) plus the stack
	// record and its desired state.
	if len(rep.Claims) != 4 {
		t.Errorf("want 4 claims, got %+v", rep.Claims)
	}

	b := rec.Bindings["openmrs"]
	b.Manifest = "stale"
	rec.Bindings["openmrs"] = b
	bad := write("bad.json", rec)
	out, err = runCapture(t, "verify", "-partial", specFile, "-stack", bad)
	if err == nil {
		t.Fatalf("stale manifest must be refuted:\n%s", out)
	}
	if !strings.Contains(out, "error[plan-binding]") {
		t.Errorf("output missing plan-binding diagnostic:\n%s", out)
	}
}

// TestCmdVerifyTrace: -trace writes a certify.check span with claim
// events, and the trace validates.
func TestCmdVerifyTrace(t *testing.T) {
	rdlFile := writeFile(t, "stack.rdl", lintUnsatRDL)
	specFile := writeFile(t, "spec.json", lintUnsatPartial)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	if _, err := runCapture(t, "verify", "-rdl", rdlFile, "-partial", specFile, "-trace", tracePath); err != nil {
		t.Fatalf("verify: %v", err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"certify.check"`) {
		t.Errorf("trace missing certify.check span:\n%s", data)
	}
	if !strings.Contains(string(data), `"name":"certify.claim"`) {
		t.Errorf("trace missing certify.claim events:\n%s", data)
	}
	if _, err := runCapture(t, "trace", "validate", tracePath); err != nil {
		t.Errorf("trace validate: %v", err)
	}
}

func TestCmdVerifyErrors(t *testing.T) {
	if _, err := runCapture(t, "verify"); err == nil ||
		!strings.Contains(err.Error(), "nothing to verify") {
		t.Errorf("err = %v", err)
	}
	if _, err := runCapture(t, "verify", "-proof", "p.jsonl"); err == nil ||
		!strings.Contains(err.Error(), "-proof and -cnf go together") {
		t.Errorf("err = %v", err)
	}
}
