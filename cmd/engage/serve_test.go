package main

// End-to-end test of `engage serve`: start the control plane on an
// ephemeral port, drive it with a real HTTP client over localhost, then
// deliver SIGTERM and assert the graceful path — in-flight requests
// complete, the command exits cleanly, and the deployment store is
// flushed to the -state file, from which every stack record round-trips
// through stack.WriteJSON/ReadStack.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"engage/internal/stack"
	"engage/internal/store"
)

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startServe launches `engage serve` in a goroutine with stdout to a
// temp file, waits for the listen line, and returns the base URL plus a
// channel carrying run's error after shutdown.
func startServe(t *testing.T, extra ...string) (string, string, chan error) {
	t.Helper()
	outFile, err := os.CreateTemp(t.TempDir(), "serve-out")
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"serve", "-addr", "127.0.0.1:0"}, extra...)
	done := make(chan error, 1)
	go func() {
		defer outFile.Close()
		done <- run(args, outFile)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		data, _ := os.ReadFile(outFile.Name())
		if m := listenRE.FindSubmatch(data); m != nil {
			return "http://" + string(m[1]), outFile.Name(), done
		}
		select {
		case err := <-done:
			t.Fatalf("serve exited before listening: %v\n%s", err, data)
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never reported a listen address\n%s", data)
		}
	}
}

const servePartial = `{
  "partial": [
    {"id": "server", "key": "Mac-OSX 10.6"},
    {"id": "tomcat", "key": "Tomcat 6.0.18", "inside": {"id": "server"}},
    {"id": "openmrs", "key": "OpenMRS 1.8", "inside": {"id": "tomcat"}}
  ]
}`

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("POST %s: decoding response: %v", url, err)
	}
	return resp.StatusCode, decoded
}

func TestServeEndToEnd(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "store.json")
	base, outPath, done := startServe(t, "-state", statePath)

	// The control plane answers over real localhost HTTP.
	st, status := postJSON(t, base+"/v1/configure", servePartial)
	if st != http.StatusOK {
		t.Fatalf("configure: status %d: %v", st, status)
	}
	if status["instances"].(float64) != 5 {
		t.Errorf("openmrs chain should configure to 5 instances, got %v", status["instances"])
	}
	// Warm second hit through the same resident pool.
	st, warm := postJSON(t, base+"/v1/configure", servePartial)
	if st != http.StatusOK || warm["warm"] != true {
		t.Errorf("second configure: status %d warm=%v, want warm hit", st, warm["warm"])
	}

	// Apply a stack; its record must survive into the state file.
	applyBody := fmt.Sprintf(`{"action": "apply", "expect_version": 0, %s`, servePartial[1:])
	st, applied := postJSON(t, base+"/v1/stacks/prod", applyBody)
	if st != http.StatusOK {
		t.Fatalf("stack apply: status %d: %v", st, applied)
	}
	if applied["version"].(float64) != 1 {
		t.Fatalf("stack apply version = %v, want 1", applied["version"])
	}

	resp, err := http.Get(base + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status endpoint: %d", resp.StatusCode)
	}

	// Graceful shutdown: SIGTERM → drain → flush → clean exit.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with error after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down within 15s of SIGTERM")
	}
	out, _ := os.ReadFile(outPath)
	if !bytes.Contains(out, []byte("draining in-flight requests")) {
		t.Errorf("shutdown narration missing:\n%s", out)
	}
	if !bytes.Contains(out, []byte("flushed 1 stack records to")) {
		t.Errorf("store flush narration missing:\n%s", out)
	}

	// The flushed state file reloads through the store codec, and the
	// record's stack round-trips through stack.WriteJSON/ReadStack.
	f, err := os.Open(statePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	reloaded, err := store.ReadStore(f)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := reloaded.Get("prod")
	if !ok {
		t.Fatalf("state file lost the prod stack; store has %d records", reloaded.Len())
	}
	if rec.Version != 1 || rec.Status != "applied" || rec.Stack == nil {
		t.Fatalf("reloaded record = %+v", rec)
	}
	var buf bytes.Buffer
	if err := rec.Stack.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := stack.ReadStack(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.Name != "prod" || len(again.Bindings) != len(rec.Stack.Bindings) || len(again.Bindings) == 0 {
		t.Errorf("stack round-trip drifted: %+v vs %+v", again, rec.Stack)
	}

	// A fresh server reloads the flushed store and reports the record.
	base2, _, done2 := startServe(t, "-state", statePath)
	resp, err = http.Get(base2 + "/v1/stacks/prod")
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reloaded server GET /v1/stacks/prod: %d", resp.StatusCode)
	}
	if got["version"].(float64) != 1 || got["live"] != false {
		t.Errorf("reloaded record should be version 1 and not live, got %v", got)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done2:
		if err != nil {
			t.Fatalf("second serve exited with error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("second serve did not shut down")
	}
}
