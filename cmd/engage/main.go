// Command engage is the command-line front end to the Engage deployment
// management system:
//
//	engage check  file.rdl...                     statically check resource types
//	engage lint   [-json] [files.rdl] [spec.json] run the static diagnostics engine
//	engage solve  [-rdl files] -partial spec.json run the configuration engine
//	engage explain [-rdl files] -partial spec.json show hypergraph + constraints
//	engage deploy [-rdl files] -partial spec.json  configure and deploy (simulated)
//	engage verify [-partial|-full|-stack|-proof]   independently certify pipeline claims
//	engage demo                                    OpenMRS quickstart end to end
//
// Without -rdl, commands run against the bundled resource library (the
// paper's Java and Django stacks). Deployment runs on the simulated
// machine substrate, so it is safe to run anywhere.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"engage/internal/api"
	"engage/internal/config"
	"engage/internal/constraint"
	"engage/internal/deploy"
	"engage/internal/fault"
	"engage/internal/health"
	"engage/internal/hypergraph"
	"engage/internal/library"
	"engage/internal/lint"
	"engage/internal/machine"
	"engage/internal/paas"
	"engage/internal/pkgmgr"
	"engage/internal/rdl"
	"engage/internal/resource"
	"engage/internal/sat"
	"engage/internal/spec"
	"engage/internal/stack"
	"engage/internal/store"
	"engage/internal/telemetry"
	"engage/internal/typecheck"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "engage:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	if len(args) == 0 {
		usage(out)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "check":
		return cmdCheck(args[1:], out)
	case "lint":
		return cmdLint(args[1:], out)
	case "solve":
		return cmdSolve(args[1:], out)
	case "explain":
		return cmdExplain(args[1:], out)
	case "deploy":
		return cmdDeploy(args[1:], out)
	case "verify":
		return cmdVerify(args[1:], out)
	case "alternatives":
		return cmdAlternatives(args[1:], out)
	case "fmt":
		return cmdFmt(args[1:], out)
	case "serve":
		return cmdServe(args[1:], out)
	case "stack":
		return cmdStack(args[1:], out)
	case "health":
		return cmdHealth(args[1:], out)
	case "trace":
		return cmdTrace(args[1:], out)
	case "demo":
		return cmdDemo(out)
	case "help", "-h", "--help":
		usage(out)
		return nil
	default:
		usage(out)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(out *os.File) {
	fmt.Fprint(out, `usage: engage <command> [flags]

commands:
  check   file.rdl...                      statically check resource types
  lint    [-json] [file.rdl...] [spec.json]
                                           static diagnostics: dead resources,
                                           shadowed versions, unused ports, and
                                           minimal-core unsat explanations
  solve   [-rdl f1,f2] -partial spec.json  compute a full installation spec
  explain [-rdl f1,f2] -partial spec.json  show the hypergraph and constraints
  deploy  [-rdl f1,f2] -partial spec.json  configure and deploy (simulated)
  verify  [-rdl f1,f2] [-partial spec.json] [-full spec.json] [-stack rec.json]
          [-proof proof.jsonl -cnf f.cnf] [-json]
                                           independently certify pipeline claims:
                                           SAT models by evaluation, UNSAT verdicts
                                           by RUP proof replay, MUS stories by
                                           proof + minimality witnesses, resolved
                                           plans and stack records by solver-free
                                           re-validation; refuted claims exit 1
  alternatives [-rdl f1,f2] -partial spec.json [-limit N]
                                           enumerate all valid full specs
  fmt     file.rdl...                      reformat RDL sources canonically
  serve   [-addr :8080] [-state store.json] [-rdl f1,f2] [-pool N] [-trace out.jsonl]
                                           run the resident control plane: warm
                                           session pool, CAS deployment store,
                                           JSON API + /metrics; -paas serves the
                                           PaaS web service (simulated cloud)
  stack   apply|status|reconcile           apply a named desired-state stack,
                                           inspect its record, or run drift →
                                           detect → replan → repair rounds
  health  -url http://host:port | -partial spec.json [-rdl f1,f2] [-json]
                                           one-shot fleet health: ask a live
                                           control plane's /v1/health, or apply
                                           the spec locally and run the declared
                                           probes once; exits 1 when unhealthy
  trace   report|validate file.jsonl       summarize or validate a telemetry trace
  demo                                     OpenMRS quickstart end to end

solve, deploy, and stack accept -trace out.jsonl to write a JSON-lines
telemetry trace (spans per stage, per deploy action, and per reconcile
round, events for retries, faults, and monitor activity); inspect it
with trace report.
`)
}

// loadRegistry builds the registry: from -rdl files when given,
// otherwise the bundled library. With a tracer, parse/resolve and
// typecheck each get a span (wall time is the interesting axis here —
// nothing advances a virtual clock before deployment).
func loadRegistry(rdlFiles string, tr *telemetry.Tracer) (*resource.Registry, bool, error) {
	if rdlFiles == "" {
		sp := tr.Span("rdl.resolve").Str("source", "bundled")
		reg, err := library.Registry()
		if reg != nil {
			sp.Int("types", int64(reg.Len()))
		}
		endSpan(sp, err)
		return reg, true, err
	}
	sources := make(map[string]string)
	for _, f := range strings.Split(rdlFiles, ",") {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, false, err
		}
		sources[f] = string(data)
	}
	sp := tr.Span("rdl.resolve").Str("source", rdlFiles).Int("files", int64(len(sources)))
	reg, err := rdl.ParseAndResolve(sources)
	if reg != nil {
		sp.Int("types", int64(reg.Len()))
	}
	endSpan(sp, err)
	if err != nil {
		return nil, false, err
	}
	tsp := tr.Span("typecheck")
	err = typecheck.CheckTypes(reg)
	endSpan(tsp, err)
	return reg, false, err
}

// endSpan stamps an error attribute (if any) and closes the span.
func endSpan(sp *telemetry.Span, err error) {
	if sp == nil {
		return
	}
	if err != nil {
		sp.Str("error", err.Error())
	}
	sp.End()
}

// openTrace opens path and returns a tracer stamping virtual times from
// clock (nil = wall clock) plus a closer surfacing emission errors.
func openTrace(path string, clock telemetry.Clock) (*telemetry.Tracer, func() error, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	tr := telemetry.New(f, clock)
	return tr, func() error {
		if err := tr.Err(); err != nil {
			f.Close()
			return fmt.Errorf("trace %s: %v", path, err)
		}
		return f.Close()
	}, nil
}

func loadPartial(path string) (*spec.Partial, error) {
	if path == "" {
		return nil, fmt.Errorf("-partial is required")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p spec.Partial
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &p, nil
}

func cmdCheck(args []string, out *os.File) error {
	if len(args) == 0 {
		return fmt.Errorf("check: need at least one .rdl file")
	}
	sources := make(map[string]string)
	for _, f := range args {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		sources[f] = string(data)
	}
	reg, err := rdl.ParseAndResolve(sources)
	if err != nil {
		return err
	}
	if err := typecheck.CheckTypes(reg); err != nil {
		return err
	}
	fmt.Fprintf(out, "ok: %d resource types are well-formed\n", reg.Len())
	for _, k := range reg.Keys() {
		t := reg.MustLookup(k)
		kind := "concrete"
		if t.Abstract {
			kind = "abstract"
		}
		fmt.Fprintf(out, "  %-36s %s\n", k, kind)
	}
	return nil
}

// cmdLint runs the static diagnostics engine over a resource library
// and, optionally, a partial installation specification. Unlike check
// and solve it never fails on a malformed library: type errors come
// back as diagnostics, and an unsatisfiable specification comes back
// with a minimal-core conflict story instead of a bare "unsat".
func cmdLint(args []string, out *os.File) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	rdlFiles := fs.String("rdl", "", "comma-separated RDL files (default: bundled library)")
	partialPath := fs.String("partial", "", "partial installation specification to lint (JSON)")
	jsonOut := fs.Bool("json", false, "emit the report as machine-readable JSON")
	tracePath := fs.String("trace", "", "write a JSON-lines telemetry trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Positional operands are accepted too: *.rdl files extend the
	// library, a *.json file is the spec.
	files := []string{}
	if *rdlFiles != "" {
		files = strings.Split(*rdlFiles, ",")
	}
	for _, a := range fs.Args() {
		switch {
		case strings.HasSuffix(a, ".rdl"):
			files = append(files, a)
		case strings.HasSuffix(a, ".json"):
			if *partialPath != "" {
				return fmt.Errorf("lint: two specifications given (%s and %s)", *partialPath, a)
			}
			*partialPath = a
		default:
			return fmt.Errorf("lint: unrecognized operand %q (want .rdl or .json)", a)
		}
	}

	var tr *telemetry.Tracer
	var closeTrace func() error
	if *tracePath != "" {
		var err error
		if tr, closeTrace, err = openTrace(*tracePath, nil); err != nil {
			return err
		}
	}

	// Parse without typechecking: lint reports type problems itself.
	libLabel := "<bundled>"
	sources := library.Sources()
	if len(files) > 0 {
		libLabel = strings.Join(files, ",")
		sources = make(map[string]string)
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				return err
			}
			sources[f] = string(data)
		}
	}
	reg, err := rdl.ParseAndResolve(sources)
	if err != nil {
		return err
	}

	var p *spec.Partial
	if *partialPath != "" {
		if p, err = loadPartial(*partialPath); err != nil {
			return err
		}
	}

	rep := lint.Check(reg, p, lint.Options{Tracer: tr})
	rep.Library = libLabel
	rep.Spec = *partialPath
	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			return err
		}
	}

	if *jsonOut {
		if err := rep.WriteJSON(out); err != nil {
			return err
		}
	} else {
		for _, d := range rep.Diagnostics {
			fmt.Fprintln(out, d)
		}
		if rep.Unsat != nil {
			fmt.Fprintln(out)
			fmt.Fprintln(out, rep.Unsat.Story())
		}
		if len(rep.Diagnostics) == 0 {
			fmt.Fprintf(out, "ok: no diagnostics (%d resource types)\n", reg.Len())
		} else {
			fmt.Fprintf(out, "%d error(s), %d warning(s)\n",
				rep.Count(lint.Error), rep.Count(lint.Warning))
		}
	}
	if rep.HasErrors() {
		return fmt.Errorf("lint: %d error(s)", rep.Count(lint.Error))
	}
	return nil
}

func cmdSolve(args []string, out *os.File) error {
	fs := flag.NewFlagSet("solve", flag.ContinueOnError)
	rdlFiles := fs.String("rdl", "", "comma-separated RDL files (default: bundled library)")
	partialPath := fs.String("partial", "", "partial installation specification (JSON)")
	solverName := fs.String("solver", "cdcl", "SAT solver: cdcl or dpll")
	encName := fs.String("encoding", "pairwise", "exactly-one encoding: pairwise or ladder")
	minimal := fs.Bool("minimal", false, "compute a subset-minimal installation (OPIUM-style)")
	parallel := fs.Int("parallel", 0, "worker pool size for the whole pipeline: hypergraph generation, constraint emission, portfolio SAT width, spec build and port propagation (0 = sequential)")
	tracePath := fs.String("trace", "", "write a JSON-lines telemetry trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tr *telemetry.Tracer
	var closeTrace func() error
	if *tracePath != "" {
		var err error
		if tr, closeTrace, err = openTrace(*tracePath, nil); err != nil {
			return err
		}
	}
	reg, _, err := loadRegistry(*rdlFiles, tr)
	if err != nil {
		return err
	}
	p, err := loadPartial(*partialPath)
	if err != nil {
		return err
	}
	eng := config.New(reg)
	eng.Tracer = tr
	eng.Parallelism = *parallel
	switch *solverName {
	case "cdcl":
		eng.Solver = sat.NewCDCL()
	case "dpll":
		eng.Solver = sat.NewDPLL()
	default:
		return fmt.Errorf("unknown solver %q", *solverName)
	}
	switch *encName {
	case "pairwise":
		eng.Encoding = constraint.Pairwise
	case "ladder":
		eng.Encoding = constraint.Ladder
	default:
		return fmt.Errorf("unknown encoding %q", *encName)
	}
	var full *spec.Full
	var st config.Stats
	if *minimal {
		full, err = eng.ConfigureMinimal(p)
	} else {
		full, st, err = eng.ConfigureStats(p)
	}
	if err != nil {
		// Close the trace anyway: the config spans (including the
		// config.lint explanation of an unsat spec) are exactly what
		// the user wants to inspect after a failed solve.
		if closeTrace != nil {
			if cerr := closeTrace(); cerr != nil {
				return fmt.Errorf("%v (also: %v)", err, cerr)
			}
		}
		return err
	}
	text, err := spec.Render(full)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, text)
	fmt.Fprintf(out, "// partial: %d instances, %d lines\n", len(p.Instances), spec.LineCount(p))
	fmt.Fprintf(out, "// full:    %d instances, %d lines\n", len(full.Instances), spec.LineCount(full))
	fmt.Fprintf(out, "// graph:   %d nodes, %d hyperedges; sat: %d vars, %d clauses, %d decisions, %d conflicts\n",
		st.GraphNodes, st.GraphEdges, st.Vars, st.Clauses, st.Solver.Decisions, st.Solver.Conflicts)
	if !*minimal {
		fmt.Fprintf(out, "// stages:  graph %v, encode %v, solve %v, build %v (propagate %v) (parallelism %d)\n",
			st.GraphWall.Round(time.Microsecond), st.EncodeWall.Round(time.Microsecond),
			st.SolveWall.Round(time.Microsecond), st.BuildWall.Round(time.Microsecond),
			st.PropagateWall.Round(time.Microsecond), *parallel)
	}
	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			return err
		}
		fmt.Fprintf(out, "// trace:   %s\n", *tracePath)
	}
	return nil
}

func cmdAlternatives(args []string, out *os.File) error {
	fs := flag.NewFlagSet("alternatives", flag.ContinueOnError)
	rdlFiles := fs.String("rdl", "", "comma-separated RDL files (default: bundled library)")
	partialPath := fs.String("partial", "", "partial installation specification (JSON)")
	limit := fs.Int("limit", 16, "maximum alternatives to enumerate (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, _, err := loadRegistry(*rdlFiles, nil)
	if err != nil {
		return err
	}
	p, err := loadPartial(*partialPath)
	if err != nil {
		return err
	}
	alts, err := config.New(reg).Alternatives(p, *limit)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d alternative full installation specification(s):\n", len(alts))
	for i, alt := range alts {
		keys := make([]string, 0, len(alt.Instances))
		for _, inst := range alt.Instances {
			keys = append(keys, fmt.Sprintf("%s (%s)", inst.ID, inst.Key))
		}
		sort.Strings(keys)
		fmt.Fprintf(out, "  #%d: %s\n", i+1, strings.Join(keys, ", "))
	}
	return nil
}

func cmdFmt(args []string, out *os.File) error {
	if len(args) == 0 {
		return fmt.Errorf("fmt: need at least one .rdl file")
	}
	sources := make(map[string]string)
	for _, f := range args {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		sources[f] = string(data)
	}
	reg, err := rdl.ParseAndResolve(sources)
	if err != nil {
		return err
	}
	fmt.Fprint(out, rdl.FormatRegistry(reg))
	return nil
}

func cmdExplain(args []string, out *os.File) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	rdlFiles := fs.String("rdl", "", "comma-separated RDL files (default: bundled library)")
	partialPath := fs.String("partial", "", "partial installation specification (JSON)")
	dot := fs.Bool("dot", false, "emit the hypergraph in Graphviz DOT format")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, _, err := loadRegistry(*rdlFiles, nil)
	if err != nil {
		return err
	}
	p, err := loadPartial(*partialPath)
	if err != nil {
		return err
	}
	g, err := hypergraph.Generate(reg, p)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Fprint(out, g.Dot())
		return nil
	}
	fmt.Fprintln(out, "hypergraph nodes:")
	for _, n := range g.Nodes() {
		mark := " "
		if n.FromSpec {
			mark = "*"
		}
		fmt.Fprintf(out, "  %s %-28s %-24s machine=%s\n", mark, n.ID, n.Key, n.Machine)
	}
	fmt.Fprintln(out, "hyperedges:")
	for _, e := range g.Edges {
		fmt.Fprintf(out, "  %-28s --%s--> {%s}\n", e.Source, e.Class, strings.Join(e.Targets, ", "))
	}
	prob := constraint.Encode(g, constraint.Pairwise)
	fmt.Fprintf(out, "constraints (%d vars, %d clauses):\n", prob.Formula.NumVars, len(prob.Formula.Clauses))
	fmt.Fprint(out, sat.Dimacs(prob.Formula))
	return nil
}

func cmdDeploy(args []string, out *os.File) error {
	fs := flag.NewFlagSet("deploy", flag.ContinueOnError)
	rdlFiles := fs.String("rdl", "", "comma-separated RDL files (default: bundled library)")
	partialPath := fs.String("partial", "", "partial installation specification (JSON)")
	parallel := fs.Bool("parallel", false, "deploy independent resources in parallel (virtual time)")
	multihost := fs.Bool("multihost", false, "use the master/slave multi-host coordinator")
	tracePath := fs.String("trace", "", "write a JSON-lines telemetry trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w := machine.NewWorld()
	var tr *telemetry.Tracer
	var closeTrace func() error
	if *tracePath != "" {
		var err error
		if tr, closeTrace, err = openTrace(*tracePath, w.Clock); err != nil {
			return err
		}
		w.SetTracer(tr)
	}
	reg, bundled, err := loadRegistry(*rdlFiles, tr)
	if err != nil {
		return err
	}
	p, err := loadPartial(*partialPath)
	if err != nil {
		return err
	}
	eng := config.New(reg)
	eng.Tracer = tr
	full, err := eng.Configure(p)
	if err != nil {
		return err
	}
	drivers := deploy.NewDriverRegistry()
	index := pkgmgr.NewIndex()
	if bundled {
		drivers = library.Drivers()
		index = library.PackageIndex()
	}
	opts := deploy.Options{
		Registry: reg, Drivers: drivers, World: w, Index: index,
		Cache: pkgmgr.NewCache(), Parallel: *parallel,
		ProvisionMissing: true, OSOf: library.OSOf,
		Tracer: tr,
	}
	finishTrace := func() error {
		if closeTrace == nil {
			return nil
		}
		if err := closeTrace(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written to %s (inspect with: engage trace report %s)\n",
			*tracePath, *tracePath)
		return nil
	}
	if *multihost {
		mh, err := deploy.NewMultiHost(full, opts)
		if err != nil {
			return err
		}
		if err := mh.Deploy(); err != nil {
			return err
		}
		fmt.Fprintf(out, "deployed %d instances across machines %v in %v (simulated)\n",
			len(full.Instances), mh.Order, mh.Elapsed())
		printStatusMap(out, mh.Status())
		return finishTrace()
	}
	d, err := deploy.New(full, opts)
	if err != nil {
		return err
	}
	if err := d.Deploy(); err != nil {
		return err
	}
	fmt.Fprintf(out, "deployed %d instances in %v (simulated)\n", len(full.Instances), d.Elapsed())
	st := map[string]string{}
	for id, s := range d.Status() {
		st[id] = string(s)
	}
	printStatusMap(out, st)
	return finishTrace()
}

// cmdStack manages named desired-state stacks on the simulated world:
//
//	engage stack apply     -name web -partial spec.json -state web.json
//	engage stack status    -state web.json
//	engage stack reconcile -name web -partial spec.json -rounds 3 -seed 7
//
// apply configures and deploys the partial specification as a stack and
// writes its record (desired spec + observed bindings) as JSON; status
// prints a saved record; reconcile applies the stack, then runs seeded
// drift-injection rounds (kill daemons, corrupt manifests, move ports)
// and lets the reconciler detect, minimally replan, and repair each
// disturbance.
func cmdStack(args []string, out *os.File) error {
	if len(args) == 0 {
		return fmt.Errorf("stack: usage: engage stack apply|status|reconcile [flags]")
	}
	sub, args := args[0], args[1:]
	switch sub {
	case "apply", "reconcile":
	case "status":
		fs := flag.NewFlagSet("stack status", flag.ContinueOnError)
		statePath := fs.String("state", "", "stack record written by `stack apply` (JSON)")
		if err := fs.Parse(args); err != nil {
			return err
		}
		if *statePath == "" {
			return fmt.Errorf("stack status: -state is required")
		}
		f, err := os.Open(*statePath)
		if err != nil {
			return err
		}
		defer f.Close()
		st, err := stack.ReadStack(f)
		if err != nil {
			return err
		}
		printStackRecord(out, st)
		return nil
	default:
		return fmt.Errorf("stack: unknown subcommand %q (want apply, status, or reconcile)", sub)
	}

	fs := flag.NewFlagSet("stack "+sub, flag.ContinueOnError)
	name := fs.String("name", "default", "stack name")
	rdlFiles := fs.String("rdl", "", "comma-separated RDL files (default: bundled library)")
	partialPath := fs.String("partial", "", "partial installation specification (JSON)")
	statePath := fs.String("state", "", "write the stack record (JSON) to this file")
	tracePath := fs.String("trace", "", "write a JSON-lines telemetry trace to this file")
	rounds := fs.Int("rounds", 3, "reconcile: drift-injection rounds to run")
	seed := fs.Int64("seed", 1, "reconcile: drift schedule seed")
	prob := fs.Float64("drift", 0.5, "reconcile: per-binding drift probability each round")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := machine.NewWorld()
	var tr *telemetry.Tracer
	var closeTrace func() error
	if *tracePath != "" {
		var err error
		if tr, closeTrace, err = openTrace(*tracePath, w.Clock); err != nil {
			return err
		}
		w.SetTracer(tr)
	}
	reg, bundled, err := loadRegistry(*rdlFiles, tr)
	if err != nil {
		return err
	}
	p, err := loadPartial(*partialPath)
	if err != nil {
		return err
	}
	drivers := deploy.NewDriverRegistry()
	index := pkgmgr.NewIndex()
	if bundled {
		drivers = library.Drivers()
		index = library.PackageIndex()
	}
	ctl := &stack.Controller{Options: deploy.Options{
		Registry: reg, Drivers: drivers, World: w, Index: index,
		Cache: pkgmgr.NewCache(), ProvisionMissing: true, OSOf: library.OSOf,
		Tracer: tr,
	}}
	a, err := ctl.Apply(*name, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "stack %q v%d applied: %d instances (simulated)\n",
		a.Stack.Name, a.Stack.Version, len(a.Stack.Desired.Instances))

	if sub == "reconcile" {
		plan := fault.NewPlan(*seed).DriftWithProbability(*prob)
		if tr != nil {
			plan.Instrument(tr)
		}
		for round := 1; round <= *rounds; round++ {
			drifted := 0
			for _, t := range a.DriftTargets() {
				if _, ok := plan.InjectDrift(t); ok {
					drifted++
				}
			}
			fmt.Fprintf(out, "\ndisturbance %d: %d binding(s) drifted\n", round, drifted)
			reps, converged := a.ReconcileUntilConverged(4)
			for _, rep := range reps {
				printRoundReport(out, rep)
			}
			if !converged {
				return fmt.Errorf("stack %q did not reconverge after disturbance %d", *name, round)
			}
		}
	}

	printStackRecord(out, a.Stack)
	if *statePath != "" {
		f, err := os.Create(*statePath)
		if err != nil {
			return err
		}
		if err := a.Stack.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "record written to %s (inspect with: engage stack status -state %s)\n",
			*statePath, *statePath)
	}
	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written to %s (inspect with: engage trace report %s)\n",
			*tracePath, *tracePath)
	}
	return nil
}

// printStackRecord renders a stack record's bindings table.
func printStackRecord(out *os.File, st *stack.Stack) {
	fmt.Fprintf(out, "stack %s (v%d): %d instance(s)\n",
		st.Name, st.Version, len(st.Desired.Instances))
	for _, id := range st.InstanceIDs() {
		b := st.Bindings[id]
		daemon := "-"
		if b.PID != 0 {
			daemon = fmt.Sprintf("pid %d ports %v", b.PID, b.Ports)
		}
		fmt.Fprintf(out, "  %-24s on %-12s %-24s %s\n", id, b.Machine, daemon, b.ManifestPath)
	}
}

// printRoundReport renders one reconcile round like the trace report's
// reconcile section.
func printRoundReport(out *os.File, rep *stack.RoundReport) {
	if rep.Converged() {
		fmt.Fprintf(out, "  round %d: converged\n", rep.Round)
		return
	}
	outcome := "FAILED"
	if rep.Repaired {
		outcome = "repaired"
	} else if rep.RolledBack {
		outcome = "ROLLED BACK"
	}
	fmt.Fprintf(out, "  round %d: %d drift(s), delta %d (pinned %d, replan %s) — %s\n",
		rep.Round, len(rep.Drifts), len(rep.Cone), rep.Pinned,
		strings.ToLower(rep.SolveStatus), outcome)
	for _, d := range rep.Drifts {
		fmt.Fprintf(out, "    %s\n", d)
	}
	if rep.Err != nil {
		fmt.Fprintf(out, "    error: %v\n", rep.Err)
	}
}

// cmdHealth is the one-shot fleet health check:
//
//	engage health -url http://localhost:8080       ask a live control plane
//	engage health -partial spec.json [-rdl files]  apply locally, probe once
//
// Both render the instance → machine → stack health rollup. The command
// itself fails (exit 1) when any instance is unhealthy, so it scripts
// like a health probe: `engage health -url … && deploy-more`.
func cmdHealth(args []string, out *os.File) error {
	fs := flag.NewFlagSet("health", flag.ContinueOnError)
	url := fs.String("url", "", "base URL of a running control plane (engage serve)")
	rdlFiles := fs.String("rdl", "", "comma-separated RDL files (default: bundled library)")
	partialPath := fs.String("partial", "", "partial installation specification (JSON) to apply and probe locally")
	name := fs.String("name", "default", "stack name for -partial mode")
	jsonOut := fs.Bool("json", false, "emit the rollup as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*url == "") == (*partialPath == "") {
		return fmt.Errorf("health: exactly one of -url or -partial is required")
	}

	if *url != "" {
		resp, err := http.Get(strings.TrimRight(*url, "/") + "/v1/health")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var body struct {
			State  string               `json:"state"`
			Stacks []health.StackRollup `json:"stacks"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return fmt.Errorf("health: %s answered unparsable JSON: %v", *url, err)
		}
		if *jsonOut {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(body); err != nil {
				return err
			}
		} else {
			fmt.Fprintf(out, "fleet: %s (%d stack(s))\n", body.State, len(body.Stacks))
			for _, r := range body.Stacks {
				printStackRollup(out, r)
			}
		}
		if body.State == health.Unhealthy.String() {
			return fmt.Errorf("health: fleet is unhealthy")
		}
		return nil
	}

	reg, bundled, err := loadRegistry(*rdlFiles, nil)
	if err != nil {
		return err
	}
	p, err := loadPartial(*partialPath)
	if err != nil {
		return err
	}
	drivers := deploy.NewDriverRegistry()
	index := pkgmgr.NewIndex()
	if bundled {
		drivers = library.Drivers()
		index = library.PackageIndex()
	}
	ctl := &stack.Controller{Options: deploy.Options{
		Registry: reg, Drivers: drivers, World: machine.NewWorld(), Index: index,
		Cache: pkgmgr.NewCache(), ProvisionMissing: true, OSOf: library.OSOf,
	}}
	a, err := ctl.Apply(*name, p)
	if err != nil {
		return err
	}
	a.Health.ProbeNow()
	roll := a.HealthRollup()
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(roll); err != nil {
			return err
		}
	} else {
		printStackRollup(out, roll)
	}
	if roll.Summary.WorstState() == health.Unhealthy {
		return fmt.Errorf("health: stack %q is unhealthy", *name)
	}
	return nil
}

// printStackRollup renders one stack's health rollup as an indented
// machine → instance tree.
func printStackRollup(out *os.File, r health.StackRollup) {
	s := r.Summary
	fmt.Fprintf(out, "stack %s: %s (%d healthy, %d suspect, %d recovering, %d unhealthy)\n",
		r.Stack, s.State, s.Healthy, s.Suspect, s.Recovering, s.Unhealthy)
	for _, m := range r.Machines {
		fmt.Fprintf(out, "  machine %s: %s\n", m.Machine, m.Summary.State)
		for _, ih := range m.Instances {
			detail := ""
			if ih.Detail != "" {
				detail = "  (" + ih.Detail + ")"
			}
			fmt.Fprintf(out, "    %-24s %s%s\n", ih.Instance, ih.State, detail)
		}
	}
}

// cmdTrace inspects a JSON-lines telemetry trace written by
// `solve -trace` or `deploy -trace`.
func cmdTrace(args []string, out *os.File) error {
	if len(args) != 2 || (args[0] != "report" && args[0] != "validate") {
		return fmt.Errorf("trace: usage: engage trace report|validate file.jsonl")
	}
	f, err := os.Open(args[1])
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := telemetry.ReadTrace(f)
	if err != nil {
		return fmt.Errorf("trace %s: %v", args[1], err)
	}
	if args[0] == "validate" {
		spans, events := 0, 0
		for i := range t.Lines {
			if t.Lines[i].Kind == telemetry.KindSpan {
				spans++
			} else {
				events++
			}
		}
		fmt.Fprintf(out, "ok: %d records are schema-valid (%d spans, %d events)\n",
			len(t.Lines), spans, events)
		return nil
	}
	telemetry.WriteReport(out, t)
	return nil
}

func printStatusMap(out *os.File, st map[string]string) {
	ids := make([]string, 0, len(st))
	for id := range st {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(out, "  %-28s %s\n", id, st[id])
	}
}

// cmdServe runs the resident control plane: library, warm-session
// pool, deployment store, and telemetry stay alive across requests.
// SIGTERM/SIGINT shut it down gracefully — in-flight requests complete,
// then the store is flushed to -state. -paas serves the older PaaS
// platform instead.
func cmdServe(args []string, out *os.File) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	paasMode := fs.Bool("paas", false, "serve the PaaS platform (simulated cloud) instead of the control plane")
	rdlFiles := fs.String("rdl", "", "comma-separated RDL files (default: bundled library)")
	statePath := fs.String("state", "", "deployment store file: loaded at startup, flushed on shutdown")
	poolIdle := fs.Int("pool", 4, "idle warm sessions kept per request shape")
	parallel := fs.Int("parallel", 0, "solver/deploy parallelism (0 = sequential, deterministic)")
	tracePath := fs.String("trace", "", "write a JSON-lines telemetry trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *paasMode {
		platform, err := paas.NewPlatform()
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "engage PaaS listening on %s (simulated cloud)\n", ln.Addr())
		fmt.Fprintln(out, "  POST /apps  GET /apps  GET /apps/{name}/status  POST /apps/{name}/upgrade  DELETE /apps/{name}")
		return (&http.Server{Handler: platform.Handler()}).Serve(ln)
	}

	var tr *telemetry.Tracer
	var closeTrace func() error
	if *tracePath != "" {
		var err error
		if tr, closeTrace, err = openTrace(*tracePath, nil); err != nil {
			return err
		}
	}
	reg, bundled, err := loadRegistry(*rdlFiles, tr)
	if err != nil {
		return err
	}
	opts := api.Options{
		Registry:    reg,
		Tracer:      tr,
		PoolIdle:    *poolIdle,
		Parallelism: *parallel,
	}
	if bundled {
		opts.Drivers = library.Drivers()
		opts.Index = library.PackageIndex()
		opts.OSOf = library.OSOf
	}
	if *statePath != "" {
		if f, err := os.Open(*statePath); err == nil {
			st, rerr := store.ReadStore(f)
			f.Close()
			if rerr != nil {
				return fmt.Errorf("serve: loading -state %s: %v", *statePath, rerr)
			}
			opts.Store = st
			fmt.Fprintf(out, "loaded %d stack records from %s\n", st.Len(), *statePath)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	srv, err := api.New(opts)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "engage control plane listening on %s\n", ln.Addr())
	fmt.Fprintln(out, "  POST /v1/configure  POST /v1/deploy  POST /v1/lint")
	fmt.Fprintln(out, "  GET|POST /v1/stacks/{name}  GET /v1/stacks  GET /v1/status  GET /v1/health  GET /metrics")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(out, "shutting down: draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && err != http.ErrServerClosed {
		return err
	}

	if *statePath != "" {
		f, err := os.Create(*statePath)
		if err != nil {
			return err
		}
		if err := srv.Store().WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("serve: flushing store to %s: %v", *statePath, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "flushed %d stack records to %s\n", srv.Store().Len(), *statePath)
	}
	if closeTrace != nil {
		return closeTrace()
	}
	return nil
}

func cmdDemo(out *os.File) error {
	reg, err := library.Registry()
	if err != nil {
		return err
	}
	p := &spec.Partial{}
	p.Add("server", resource.MakeKey("Mac-OSX", "10.6")).
		Set("hostname", resource.Str("localhost"))
	p.Add("tomcat", resource.MakeKey("Tomcat", "6.0.18")).In("server")
	p.Add("openmrs", resource.MakeKey("OpenMRS", "1.8")).In("tomcat")

	fmt.Fprintf(out, "partial installation specification (%d lines):\n", spec.LineCount(p))
	text, _ := spec.Render(p)
	fmt.Fprintln(out, text)

	full, st, err := config.New(reg).ConfigureStats(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nconfiguration engine: %d nodes, %d vars, %d clauses → %d instances (%d lines)\n",
		st.GraphNodes, st.Vars, st.Clauses, len(full.Instances), spec.LineCount(full))

	w := machine.NewWorld()
	d, err := deploy.New(full, deploy.Options{
		Registry: reg, Drivers: library.Drivers(), World: w,
		Index: library.PackageIndex(), Cache: pkgmgr.NewCache(),
		ProvisionMissing: true, OSOf: library.OSOf,
	})
	if err != nil {
		return err
	}
	if err := d.Deploy(); err != nil {
		return err
	}
	fmt.Fprintf(out, "deployed in %v of simulated time; services:\n", d.Elapsed())
	m, _ := w.Machine("server")
	for _, proc := range m.Processes() {
		fmt.Fprintf(out, "  pid %-4d %-12s ports %v\n", proc.PID, proc.Name, proc.Ports)
	}
	return nil
}
