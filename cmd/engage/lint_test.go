package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"engage/internal/lint"
)

// RDL fixtures for the lint subcommand. lintUnsatRDL plus
// lintUnsatPartial pin two sibling Db versions while App needs exactly
// one — a canonical unsatisfiable specification.
const lintUnsatRDL = `
resource "M 1" { }
abstract resource "Db" {
    inside "M 1"
    output { url: string = "u" }
}
resource "Db 1.0" extends "Db" {}
resource "Db 2.0" extends "Db" {}
resource "App 1" {
    inside "M 1"
    input { db: string }
    env "Db" { url -> db }
}`

const lintUnsatPartial = `[
  {"id": "m", "key": "M 1"},
  {"id": "app", "key": "App 1", "inside": {"id": "m"}},
  {"id": "db1", "key": "Db 1.0", "inside": {"id": "m"}},
  {"id": "db2", "key": "Db 2.0", "inside": {"id": "m"}}
]`

// lintDefectRDL seeds one dead resource (App depends on a childless
// abstract type) and one unused output port.
const lintDefectRDL = `
resource "M 1" {
    output { extra: string = "x" }
}
abstract resource "Ghost" { inside "M 1" }
resource "App 1" {
    inside "M 1"
    env "Ghost"
}`

func TestCmdLintCleanLibrary(t *testing.T) {
	rdlFile := writeFile(t, "stack.rdl", cliRDL)
	out, err := runCapture(t, "lint", rdlFile)
	if err != nil {
		t.Fatalf("lint: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok: no diagnostics (4 resource types)") {
		t.Errorf("lint output: %s", out)
	}
}

func TestCmdLintDefects(t *testing.T) {
	rdlFile := writeFile(t, "bad.rdl", lintDefectRDL)
	out, err := runCapture(t, "lint", rdlFile)
	if err == nil {
		t.Fatalf("lint of a defective library should exit nonzero:\n%s", out)
	}
	if !strings.Contains(err.Error(), "lint: 2 error(s)") {
		t.Errorf("err = %v", err)
	}
	for _, want := range []string{
		"error[empty-frontier]",
		"error[dead-resource]",
		"warning[unused-output]",
		"2 error(s), 1 warning(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdLintUnsatSpec(t *testing.T) {
	rdlFile := writeFile(t, "stack.rdl", lintUnsatRDL)
	specFile := writeFile(t, "spec.json", lintUnsatPartial)
	// Spec given as a positional operand, library via -rdl.
	out, err := runCapture(t, "lint", "-rdl", rdlFile, specFile)
	if err == nil {
		t.Fatalf("lint of an unsat spec should exit nonzero:\n%s", out)
	}
	for _, want := range []string{
		"error[spec-unsat]",
		"jointly unsatisfiable (minimal core",
		`the specification pins instance "db1" to Db 1.0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCmdLintJSON: -json output round-trips through the validating
// reader, carrying the unsat explanation.
func TestCmdLintJSON(t *testing.T) {
	rdlFile := writeFile(t, "stack.rdl", lintUnsatRDL)
	specFile := writeFile(t, "spec.json", lintUnsatPartial)
	out, err := runCapture(t, "lint", "-json", "-rdl", rdlFile, "-partial", specFile)
	if err == nil {
		t.Fatal("lint -json of an unsat spec should still exit nonzero")
	}
	rep, rerr := lint.ReadReport(strings.NewReader(out))
	if rerr != nil {
		t.Fatalf("ReadReport: %v\n%s", rerr, out)
	}
	if rep.Unsat == nil || len(rep.Unsat.Core) != 4 {
		t.Errorf("unsat core = %+v, want 4 constraints", rep.Unsat)
	}
	if rep.Library != rdlFile || rep.Spec != specFile {
		t.Errorf("labels = %q %q", rep.Library, rep.Spec)
	}
}

// TestCmdLintBundled: the shipped library must lint clean of errors;
// its known warnings are unused-output on ports exported for consumers
// outside the RDL sources (generated app types, the simulator).
func TestCmdLintBundled(t *testing.T) {
	out, err := runCapture(t, "lint")
	if err != nil {
		t.Fatalf("bundled library must lint without errors: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 error(s)") {
		t.Errorf("lint output: %s", out)
	}
}

// TestCmdLintTrace: -trace writes a valid trace containing the lint
// spans, and trace report renders it.
func TestCmdLintTrace(t *testing.T) {
	rdlFile := writeFile(t, "stack.rdl", lintUnsatRDL)
	specFile := writeFile(t, "spec.json", lintUnsatPartial)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	if _, err := runCapture(t, "lint", "-rdl", rdlFile, "-partial", specFile, "-trace", tracePath); err == nil {
		t.Fatal("unsat lint should exit nonzero")
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []string{"lint.library", "lint.spec"} {
		if !strings.Contains(string(data), `"name":"`+span+`"`) {
			t.Errorf("trace missing span %q", span)
		}
	}
	if _, err := runCapture(t, "trace", "validate", tracePath); err != nil {
		t.Errorf("trace validate: %v", err)
	}
	out, err := runCapture(t, "trace", "report", tracePath)
	if err != nil {
		t.Fatalf("trace report: %v", err)
	}
	for _, stage := range []string{"lint ", "lint.library", "lint.spec"} {
		if !strings.Contains(out, stage) {
			t.Errorf("trace report missing stage %q:\n%s", stage, out)
		}
	}
}

func TestCmdLintErrors(t *testing.T) {
	if _, err := runCapture(t, "lint", "nope.xyz"); err == nil ||
		!strings.Contains(err.Error(), "unrecognized operand") {
		t.Errorf("err = %v", err)
	}
	a := writeFile(t, "a.json", "[]")
	b := writeFile(t, "b.json", "[]")
	if _, err := runCapture(t, "lint", a, b); err == nil ||
		!strings.Contains(err.Error(), "two specifications") {
		t.Errorf("err = %v", err)
	}
	if _, err := runCapture(t, "lint", filepath.Join(t.TempDir(), "missing.rdl")); err == nil {
		t.Error("missing file should fail")
	}
}

// TestCmdSolveTraceOnUnsat: a failed solve still closes the trace, so
// the config.lint span explaining the conflict is inspectable.
func TestCmdSolveTraceOnUnsat(t *testing.T) {
	rdlFile := writeFile(t, "stack.rdl", lintUnsatRDL)
	specFile := writeFile(t, "spec.json", lintUnsatPartial)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	_, err := runCapture(t, "solve", "-rdl", rdlFile, "-partial", specFile, "-trace", tracePath)
	if err == nil || !strings.Contains(err.Error(), "jointly unsatisfiable") {
		t.Fatalf("solve err = %v, want unsat with explanation", err)
	}
	data, rerr := os.ReadFile(tracePath)
	if rerr != nil {
		t.Fatalf("trace not written on solve error: %v", rerr)
	}
	if !strings.Contains(string(data), `"name":"config.lint"`) {
		t.Errorf("trace missing config.lint span:\n%s", data)
	}
	out, err := runCapture(t, "trace", "report", tracePath)
	if err != nil {
		t.Fatalf("trace report: %v", err)
	}
	if !strings.Contains(out, "config.lint") {
		t.Errorf("trace report should list the lint stage:\n%s", out)
	}
}
