package main

// Tests for `engage health`: the local apply-and-probe mode over a
// custom library, the JSON rendering, flag validation, and the remote
// mode against a live `engage serve` control plane.

import (
	"encoding/json"
	"strings"
	"syscall"
	"testing"
	"time"

	"os"
)

// healthCLIRDL declares probes on the service so the local one-shot has
// something to run; with no drivers registered the instance is passive
// (no daemon, no ports), so proc-alive and port-open pass vacuously and
// config-digest does the real work against the written manifest.
const healthCLIRDL = `
abstract resource "Server" {}
resource "Box 1" extends "Server" {}
resource "Svc 1" {
    inside "Server"
    config { port: tcp_port = 9000 }
    health {
        probe "port-open"
        probe "proc-alive"
        probe "config-digest"
        interval "30s"
        timeout "2s"
    }
}
`

const healthCLIPartial = `[
  {"id": "box", "key": "Box 1"},
  {"id": "svc", "key": "Svc 1", "inside": {"id": "box"}}
]`

func TestCmdHealthLocal(t *testing.T) {
	rdlFile := writeFile(t, "h.rdl", healthCLIRDL)
	partial := writeFile(t, "p.json", healthCLIPartial)
	out, err := runCapture(t, "health", "-rdl", rdlFile, "-partial", partial)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stack default: healthy (1 healthy, 0 suspect, 0 recovering, 0 unhealthy)") {
		t.Errorf("health output: %s", out)
	}
	if !strings.Contains(out, "svc") || !strings.Contains(out, "machine box: healthy") {
		t.Errorf("rollup tree missing instance/machine lines: %s", out)
	}
}

func TestCmdHealthLocalJSON(t *testing.T) {
	rdlFile := writeFile(t, "h.rdl", healthCLIRDL)
	partial := writeFile(t, "p.json", healthCLIPartial)
	out, err := runCapture(t, "health", "-rdl", rdlFile, "-partial", partial, "-json", "-name", "web")
	if err != nil {
		t.Fatal(err)
	}
	var roll struct {
		Stack   string `json:"stack"`
		Summary struct {
			State   string `json:"state"`
			Healthy int    `json:"healthy"`
		} `json:"summary"`
		Machines []struct {
			Machine string `json:"machine"`
		} `json:"machines"`
	}
	if err := json.Unmarshal([]byte(out), &roll); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out)
	}
	if roll.Stack != "web" || roll.Summary.State != "healthy" || roll.Summary.Healthy != 1 {
		t.Errorf("rollup = %+v", roll)
	}
	if len(roll.Machines) != 1 || roll.Machines[0].Machine != "box" {
		t.Errorf("machines = %+v", roll.Machines)
	}
}

func TestCmdHealthFlagErrors(t *testing.T) {
	if _, err := runCapture(t, "health"); err == nil {
		t.Error("health without -url or -partial should fail")
	}
	rdlFile := writeFile(t, "h.rdl", healthCLIRDL)
	partial := writeFile(t, "p.json", healthCLIPartial)
	if _, err := runCapture(t, "health", "-url", "http://x", "-rdl", rdlFile, "-partial", partial); err == nil {
		t.Error("health with both -url and -partial should fail")
	}
}

// TestCmdHealthURL drives the remote mode end to end: serve, apply a
// stack over HTTP, then `engage health -url` renders the fleet rollup.
func TestCmdHealthURL(t *testing.T) {
	base, _, done := startServe(t)
	applyBody := `{"action": "apply", "expect_version": 0, ` + servePartial[1:]
	if st, resp := postJSON(t, base+"/v1/stacks/prod", applyBody); st != 200 {
		t.Fatalf("stack apply: status %d: %v", st, resp)
	}
	out, err := runCapture(t, "health", "-url", base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fleet: healthy (1 stack(s))") {
		t.Errorf("remote health output: %s", out)
	}
	if !strings.Contains(out, "stack prod:") {
		t.Errorf("remote health should list the prod stack: %s", out)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with error: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down")
	}
}
