package main

// engage verify: the independent certification front end. Every claim
// the configuration pipeline makes — SAT models, UNSAT proofs, MUS
// conflict stories, resolved plans, stack records — is re-checked by
// internal/certify, which trusts nothing but a dumb unit propagator and
// direct evaluation. Any refuted claim exits nonzero.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"engage/internal/certify"
	"engage/internal/config"
	"engage/internal/constraint"
	"engage/internal/hypergraph"
	"engage/internal/lint"
	"engage/internal/resource"
	"engage/internal/sat"
	"engage/internal/spec"
	"engage/internal/stack"
	"engage/internal/telemetry"
)

// verifyClaim is one certified or refuted claim in the report.
type verifyClaim struct {
	Claim   string `json:"claim"`
	Verdict string `json:"verdict"` // "certified" or "refuted"
	Detail  string `json:"detail,omitempty"`
}

// verifyReport accumulates claims and plan diagnostics.
type verifyReport struct {
	Claims      []verifyClaim     `json:"claims"`
	Diagnostics []lint.Diagnostic `json:"diagnostics"`
}

func (r *verifyReport) certified(sp *telemetry.Span, claim, detail string, args ...any) {
	r.record(sp, claim, "certified", fmt.Sprintf(detail, args...))
}

func (r *verifyReport) refuted(sp *telemetry.Span, claim, detail string, args ...any) {
	r.record(sp, claim, "refuted", fmt.Sprintf(detail, args...))
}

func (r *verifyReport) record(sp *telemetry.Span, claim, verdict, detail string) {
	r.Claims = append(r.Claims, verifyClaim{Claim: claim, Verdict: verdict, Detail: detail})
	sp.Event("certify.claim").Str("claim", claim).Str("verdict", verdict).Emit()
}

func (r *verifyReport) planDiags(sp *telemetry.Span, claim string, diags []lint.Diagnostic) {
	r.Diagnostics = append(r.Diagnostics, diags...)
	if len(diags) == 0 {
		r.certified(sp, claim, "all invariants hold")
	} else {
		r.refuted(sp, claim, "%d violation(s)", len(diags))
	}
}

func (r *verifyReport) failed() bool {
	for _, c := range r.Claims {
		if c.Verdict != "certified" {
			return true
		}
	}
	return false
}

func cmdVerify(args []string, out *os.File) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	rdlFiles := fs.String("rdl", "", "comma-separated RDL files (default: bundled library)")
	partialPath := fs.String("partial", "", "partial specification: certify its solve verdict end to end")
	fullPath := fs.String("full", "", "resolved full specification to re-validate without the solver")
	stackPath := fs.String("stack", "", "stack record (JSON) to verify bindings and desired state of")
	proofPath := fs.String("proof", "", "DRAT-style proof (JSON lines) to replay against -cnf")
	cnfPath := fs.String("cnf", "", "DIMACS CNF formula the -proof claims unsatisfiable")
	dumpProof := fs.String("dump-proof", "", "write the solver's proof (JSON lines) and formula (DIMACS, .cnf suffix) here for offline replay")
	jsonOut := fs.Bool("json", false, "emit the verification report as JSON")
	tracePath := fs.String("trace", "", "write a JSON-lines telemetry trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *partialPath == "" && *fullPath == "" && *stackPath == "" && *proofPath == "" {
		return fmt.Errorf("verify: nothing to verify (want -partial, -full, -stack, or -proof)")
	}
	if (*proofPath == "") != (*cnfPath == "") {
		return fmt.Errorf("verify: -proof and -cnf go together")
	}

	var tr *telemetry.Tracer
	var closeTrace func() error
	if *tracePath != "" {
		var err error
		if tr, closeTrace, err = openTrace(*tracePath, nil); err != nil {
			return err
		}
	}
	sp := tr.Span("certify.check")

	rep := &verifyReport{}
	if *proofPath != "" {
		verifyProofFile(sp, rep, *cnfPath, *proofPath)
	}

	var reg *resource.Registry
	if *partialPath != "" || *fullPath != "" || *stackPath != "" {
		var err error
		if reg, _, err = loadRegistry(*rdlFiles, tr); err != nil {
			return err
		}
	}

	var partial *spec.Partial
	if *partialPath != "" {
		var err error
		if partial, err = loadPartial(*partialPath); err != nil {
			return err
		}
	}

	switch {
	case *fullPath != "":
		full, err := loadFull(*fullPath)
		if err != nil {
			return err
		}
		rep.planDiags(sp, "plan "+*fullPath, certify.CheckPlan(reg, partial, full))
	case *partialPath != "":
		if err := verifySolve(sp, rep, reg, partial, *partialPath, *dumpProof, tr); err != nil {
			return err
		}
	}

	if *stackPath != "" {
		st, err := loadStack(*stackPath)
		if err != nil {
			return err
		}
		rep.planDiags(sp, "stack record "+*stackPath, certify.CheckStack(st, nil))
		rep.planDiags(sp, "stack desired state "+*stackPath, certify.CheckPlan(reg, partial, st.Desired))
	}

	sp.Int("claims", int64(len(rep.Claims))).Bool("failed", rep.failed()).End()
	if closeTrace != nil {
		if err := closeTrace(); err != nil {
			return err
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if rep.Diagnostics == nil {
			rep.Diagnostics = []lint.Diagnostic{}
		}
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		for _, d := range rep.Diagnostics {
			fmt.Fprintln(out, d)
		}
		for _, c := range rep.Claims {
			if c.Verdict == "certified" {
				fmt.Fprintf(out, "certified: %s (%s)\n", c.Claim, c.Detail)
			} else {
				fmt.Fprintf(out, "REFUTED: %s (%s)\n", c.Claim, c.Detail)
			}
		}
	}
	if rep.failed() {
		return fmt.Errorf("verify: refuted claims")
	}
	return nil
}

// verifyProofFile replays a standalone proof against a DIMACS formula.
func verifyProofFile(sp *telemetry.Span, rep *verifyReport, cnfPath, proofPath string) {
	claim := fmt.Sprintf("UNSAT proof %s for %s", proofPath, cnfPath)
	cnfData, err := os.ReadFile(cnfPath)
	if err != nil {
		rep.refuted(sp, claim, "%v", err)
		return
	}
	f, err := sat.ParseDimacs(string(cnfData))
	if err != nil {
		rep.refuted(sp, claim, "%v", err)
		return
	}
	pf, err := os.Open(proofPath)
	if err != nil {
		rep.refuted(sp, claim, "%v", err)
		return
	}
	defer pf.Close()
	proof, err := sat.ReadProofJSONL(pf)
	if err != nil {
		rep.refuted(sp, claim, "%v", err)
		return
	}
	st, err := certify.CheckUnsat(f, proof)
	if err != nil {
		rep.refuted(sp, claim, "%v", err)
		return
	}
	rep.certified(sp, claim, "%d lemmas RUP-checked, %d propagations", st.Lemmas, st.Propagations)
}

// verifySolve certifies a partial specification's solve verdict: a SAT
// answer by model evaluation plus solver-free plan validation of the
// configured result, an UNSAT answer by replaying the solver's proof
// and spot-checking the minimal core's story.
func verifySolve(sp *telemetry.Span, rep *verifyReport, reg *resource.Registry, partial *spec.Partial, label, dumpProof string, tr *telemetry.Tracer) error {
	expl := lint.ExplainUnsat(reg, partial, lint.Options{Tracer: tr})
	if expl == nil {
		// Satisfiable (or invalid — Configure will say). Certify the
		// model directly, then the configured plan.
		full, err := config.New(reg).Configure(partial)
		if err != nil {
			return err
		}
		certifyModel(sp, rep, reg, partial, label)
		rep.planDiags(sp, "configured plan for "+label, certify.CheckPlan(reg, partial, full))
		return nil
	}
	claim := "unsat story for " + label
	cert := expl.Cert
	if cert == nil {
		rep.refuted(sp, claim, "solver produced no certificate")
		return nil
	}
	if dumpProof != "" {
		if err := writeProofArtifacts(dumpProof, cert); err != nil {
			return err
		}
	}
	spot, st, err := certify.CheckMUS(cert.Formula, cert.Proof, cert.MUS, cert.Witnesses)
	if err != nil {
		rep.refuted(sp, claim, "%v", err)
		return nil
	}
	rep.certified(sp, claim, "%d-constraint MUS certified (%d lemmas, %d/%d minimality witnesses)",
		len(cert.MUS), st.Lemmas, spot, len(cert.MUS))
	return nil
}

// certifyModel re-solves the spec problem once and checks the model by
// direct clause evaluation.
func certifyModel(sp *telemetry.Span, rep *verifyReport, reg *resource.Registry, partial *spec.Partial, label string) {
	g, err := hypergraph.Generate(reg, partial)
	if err != nil {
		rep.refuted(sp, "model for "+label, "%v", err)
		return
	}
	ap := constraint.EncodeAssumable(g, constraint.Pairwise)
	res := sat.StartIncremental(sat.NewCDCL(), ap.Formula).SolveAssuming(ap.Selectors)
	if res.Status != sat.Sat {
		rep.refuted(sp, "model for "+label, "re-solve returned %v", res.Status)
		return
	}
	if err := certify.CheckModelAssuming(ap.Formula, res.Model, ap.Selectors); err != nil {
		rep.refuted(sp, "model for "+label, "%v", err)
		return
	}
	rep.certified(sp, "model for "+label, "satisfies all %d clauses", len(ap.Formula.Clauses))
}

// writeProofArtifacts dumps a certificate's proof as JSON lines plus a
// self-contained DIMACS formula (path + ".cnf"): the encoding with the
// MUS constraints pinned as unit clauses, so the pair replays
// end-to-end with `engage verify -proof <path> -cnf <path>.cnf`. (The
// bare encoding is satisfiable — the conflict only exists under the
// MUS assumptions. RUP is monotone in the clause database, so adding
// the units keeps every lemma checkable and turns the solver's
// core-claim lemma into a root-level contradiction.)
func writeProofArtifacts(path string, cert *lint.UnsatCertificate) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := cert.Proof.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	pinned := sat.NewFormula(cert.Formula.NumVars)
	pinned.Clauses = append(pinned.Clauses, cert.Formula.Clauses...)
	for _, m := range cert.MUS {
		pinned.AddUnit(m)
	}
	return os.WriteFile(path+".cnf", []byte(sat.Dimacs(pinned)), 0o644)
}

func loadFull(path string) (*spec.Full, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f spec.Full
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

func loadStack(path string) (*stack.Stack, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return stack.ReadStack(f)
}
