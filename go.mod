module engage

go 1.22
