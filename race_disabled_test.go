//go:build !race

package engage

const raceEnabled = false
