package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, file
}

func messages(fs []finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.pos.String()+": "+f.msg)
	}
	return out
}

func TestWallclockFlagsBareUse(t *testing.T) {
	fset, file := parse(t, `package deploy
import "time"
func f() time.Time { return time.Now() }
`)
	fs := checkWallclock(fset, file)
	if len(fs) != 1 || !strings.Contains(fs[0].msg, "time.Now in a virtual-clock package") {
		t.Errorf("findings = %v", messages(fs))
	}
	if fs[0].pos.Line != 3 {
		t.Errorf("line = %d, want 3", fs[0].pos.Line)
	}
}

func TestWallclockAllowlist(t *testing.T) {
	fset, file := parse(t, `package deploy
import "time"
func f() time.Duration {
	start := time.Now() //engage:wallclock measuring real overhead
	//engage:wallclock
	return time.Since(start)
}
`)
	if fs := checkWallclock(fset, file); len(fs) != 0 {
		t.Errorf("allowlisted uses flagged: %v", messages(fs))
	}
}

func TestWallclockAliasedImport(t *testing.T) {
	fset, file := parse(t, `package deploy
import wall "time"
func f() wall.Time { return wall.Now() }
`)
	fs := checkWallclock(fset, file)
	if len(fs) != 1 || !strings.Contains(fs[0].msg, "wall.Now") {
		t.Errorf("findings = %v", messages(fs))
	}
}

func TestWallclockDotImport(t *testing.T) {
	fset, file := parse(t, `package deploy
import . "time"
var x = Now()
`)
	fs := checkWallclock(fset, file)
	if len(fs) != 1 || !strings.Contains(fs[0].msg, "dot-import") {
		t.Errorf("findings = %v", messages(fs))
	}
}

func TestWallclockIgnoresOtherFuncs(t *testing.T) {
	fset, file := parse(t, `package deploy
import "time"
var d = 3 * time.Second
func f(t time.Time) string { return t.Format(time.RFC3339) }
`)
	if fs := checkWallclock(fset, file); len(fs) != 0 {
		t.Errorf("non-clock uses flagged: %v", messages(fs))
	}
}

func TestWallclockNoTimeImport(t *testing.T) {
	fset, file := parse(t, `package deploy
func f() {}
`)
	if fs := checkWallclock(fset, file); len(fs) != 0 {
		t.Errorf("findings = %v", messages(fs))
	}
}

func TestNilGuardFlagsUnguardedDeref(t *testing.T) {
	fset, file := parse(t, `package telemetry
type Span struct{ id int64 }
func (s *Span) ID() int64 { return s.id }
`)
	fs := checkNilGuard(fset, file)
	if len(fs) != 1 || !strings.Contains(fs[0].msg, `(*Span).ID dereferences receiver "s"`) {
		t.Errorf("findings = %v", messages(fs))
	}
}

func TestNilGuardAcceptsGuardedDeref(t *testing.T) {
	fset, file := parse(t, `package telemetry
type Span struct{ id int64 }
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}
func (s *Span) Late() int64 {
	var zero int64
	if s == nil {
		return zero
	}
	return s.id
}
`)
	if fs := checkNilGuard(fset, file); len(fs) != 0 {
		t.Errorf("guarded methods flagged: %v", messages(fs))
	}
}

func TestNilGuardAcceptsDelegation(t *testing.T) {
	// Inc delegates to Add, which guards; a method call on a nil
	// receiver is fine.
	fset, file := parse(t, `package telemetry
type Counter struct{ n int64 }
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n += n
}
func (c *Counter) Inc() { c.Add(1) }
`)
	if fs := checkNilGuard(fset, file); len(fs) != 0 {
		t.Errorf("delegating method flagged: %v", messages(fs))
	}
}

func TestNilGuardScopesToContract(t *testing.T) {
	// Unexported methods and types outside the instrument set are not
	// part of the nil-safety contract.
	fset, file := parse(t, `package telemetry
type Span struct{ id int64 }
func (s *Span) internal() int64 { return s.id }
type Line struct{ Name string }
func (l *Line) Title() string { return l.Name }
`)
	if fs := checkNilGuard(fset, file); len(fs) != 0 {
		t.Errorf("out-of-contract methods flagged: %v", messages(fs))
	}
}

func TestNilGuardDerefInCondition(t *testing.T) {
	// A field read inside the condition of a non-guard if counts as a
	// dereference before the guard.
	fset, file := parse(t, `package telemetry
type Gauge struct{ v int64 }
func (g *Gauge) Value() int64 {
	if g.v > 0 {
		return g.v
	}
	if g == nil {
		return 0
	}
	return g.v
}
`)
	fs := checkNilGuard(fset, file)
	if len(fs) != 1 {
		t.Errorf("findings = %v", messages(fs))
	}
}

func TestMaporderFlagsMapRange(t *testing.T) {
	fset, file := parse(t, `package lint
var codes = map[string]int{}
func emit() {
	for k := range codes {
		println(k)
	}
}
`)
	fs := checkMaporder(fset, []*ast.File{file})
	if len(fs) != 1 || !strings.Contains(fs[0].msg, "maporder: range over a map") {
		t.Errorf("findings = %v", messages(fs))
	}
	if fs[0].pos.Line != 4 {
		t.Errorf("line = %d, want 4", fs[0].pos.Line)
	}
}

func TestMaporderAllowlist(t *testing.T) {
	fset, file := parse(t, `package lint
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { //engage:maporder — collected then sorted below
		out = append(out, k)
	}
	//engage:maporder counting only
	for range m {
		_ = out
	}
	return out
}
`)
	if fs := checkMaporder(fset, []*ast.File{file}); len(fs) != 0 {
		t.Errorf("allowlisted ranges flagged: %v", messages(fs))
	}
}

func TestMaporderIgnoresNonMaps(t *testing.T) {
	fset, file := parse(t, `package lint
func f(xs []int, s string, ch chan int) {
	for range xs {
	}
	for range s {
	}
	for range ch {
	}
}
`)
	if fs := checkMaporder(fset, []*ast.File{file}); len(fs) != 0 {
		t.Errorf("non-map ranges flagged: %v", messages(fs))
	}
}

func TestMaporderNamedMapType(t *testing.T) {
	// A locally declared named type whose underlying type is a map is
	// still a map.
	fset, file := parse(t, `package store
type records map[string]int
func f(r records) {
	for k := range r {
		println(k)
	}
}
`)
	fs := checkMaporder(fset, []*ast.File{file})
	if len(fs) != 1 {
		t.Errorf("findings = %v", messages(fs))
	}
}

func TestMaporderSkipsUnresolvedTypes(t *testing.T) {
	// Imports are stubbed: a map-typed expression from another package
	// cannot be resolved locally and must be skipped, not guessed at.
	fset, file := parse(t, `package lint
import "engage/internal/other"
func f() {
	for k := range other.Things() {
		println(k)
	}
}
`)
	if fs := checkMaporder(fset, []*ast.File{file}); len(fs) != 0 {
		t.Errorf("unresolved range flagged: %v", messages(fs))
	}
}

func TestExpandPatterns(t *testing.T) {
	dirs, err := expand([]string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || dirs[0] != "." {
		t.Errorf("dirs = %v", dirs)
	}
}
