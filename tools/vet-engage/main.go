// Command vet-engage runs repository-specific static checks that go
// vet cannot express. It is hand-rolled on go/ast only (no external
// analysis framework) and is wired into CI as
//
//	go run ./tools/vet-engage ./...
//
// Checks:
//
//   - wallclock: the simulator packages (internal/deploy, machine,
//     monitor, fault, upgrade, health) run on a virtual clock; reading
//     the wall clock there silently breaks determinism and trace
//     reproducibility.
//     Any use of time.Now, time.Sleep, time.Since, time.Until,
//     time.After, time.Tick, time.NewTimer, time.NewTicker, or
//     time.AfterFunc in those packages is an error unless the line (or
//     the line above it) carries an //engage:wallclock comment, which
//     marks a deliberate wall-time measurement such as the span
//     wall-duration axis. Test files are exempt: they may time
//     themselves.
//
//   - maporder: the output-producing packages (internal/telemetry,
//     lint, store, certify) promise deterministic output — traces,
//     diagnostics, snapshots, and verification reports are diffed,
//     hashed, and replayed. Go map iteration order is randomized, so a
//     bare `for range` over a map in those packages is an error unless
//     the line (or the line above it) carries an //engage:maporder
//     comment asserting the iteration is order-independent (counting,
//     draining) or immediately sorted. The check resolves map-typed
//     expressions by type-checking each package alone with stubbed
//     imports, which covers every in-package map; expressions whose
//     type cannot be resolved locally are skipped, not guessed at.
//     Test files are exempt.
//
//   - nilguard: disabled telemetry hands out nil *Tracer/*Span/*Event
//     (and nil metric instruments), and the documented contract is that
//     every method on them no-ops. That holds only if each exported
//     pointer-receiver method in internal/telemetry guards the receiver
//     against nil before touching its fields. The check verifies the
//     declarations, which makes every call site in the repo provably
//     nil-safe: a method may delegate to other methods of the receiver
//     freely (the callee guards), but a field access before the first
//     `if recv == nil` guard is an error.
//
// Exit status is 1 if any finding is reported.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// wallclockDirs are the virtual-clock packages, as slash-separated
// paths relative to the module root.
var wallclockDirs = map[string]bool{
	"internal/deploy":  true,
	"internal/machine": true,
	"internal/monitor": true,
	"internal/fault":   true,
	"internal/upgrade": true,
	// The health checker's whole contract is virtual-time probing
	// (detection bounds are stated in virtual time), so it carries zero
	// //engage:wallclock annotations by design.
	"internal/health": true,
}

// maporderDirs are the output-producing packages whose emissions must
// be deterministic.
var maporderDirs = map[string]bool{
	"internal/telemetry": true,
	"internal/lint":      true,
	"internal/store":     true,
	"internal/certify":   true,
}

const nilguardDir = "internal/telemetry"

// nilguardTypes are the receiver types whose exported methods must be
// nil-safe (the "disabled telemetry is free" contract).
var nilguardTypes = map[string]bool{
	"Tracer": true, "Span": true, "Event": true,
	"Counter": true, "Gauge": true, "Histogram": true, "Registry": true,
}

// wallclockFuncs are the time package functions that read or wait on
// the wall clock.
var wallclockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

const allowDirective = "//engage:wallclock"

const maporderDirective = "//engage:maporder"

type finding struct {
	pos token.Position
	msg string
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vet-engage:", err)
		os.Exit(2)
	}
	var findings []finding
	fset := token.NewFileSet()
	for _, dir := range dirs {
		fs, err := checkDir(fset, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vet-engage:", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// expand resolves ./... style patterns into the set of directories
// containing Go files.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, p := range patterns {
		root, recursive := p, false
		if strings.HasSuffix(p, "/...") {
			root, recursive = strings.TrimSuffix(p, "/..."), true
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir parses the directory's non-test Go files and applies the
// checks that are in scope for it.
func checkDir(fset *token.FileSet, dir string) ([]finding, error) {
	rel := filepath.ToSlash(strings.TrimPrefix(filepath.Clean(dir), "./"))
	wantWallclock := wallclockDirs[rel]
	wantNilguard := rel == nilguardDir
	wantMaporder := maporderDirs[rel]
	if !wantWallclock && !wantNilguard && !wantMaporder {
		return nil, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var findings []finding
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, file)
		if wantWallclock {
			findings = append(findings, checkWallclock(fset, file)...)
		}
		if wantNilguard {
			findings = append(findings, checkNilGuard(fset, file)...)
		}
	}
	if wantMaporder {
		findings = append(findings, checkMaporder(fset, files)...)
	}
	return findings, nil
}

// stubImporter satisfies every import with an empty package. Local
// type checking still resolves all types declared inside the package
// under inspection, which is all maporder needs.
type stubImporter struct{ pkgs map[string]*types.Package }

func (s *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.pkgs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	if s.pkgs == nil {
		s.pkgs = map[string]*types.Package{}
	}
	s.pkgs[path] = p
	return p, nil
}

// checkMaporder flags `for range` over map-typed expressions outside
// //engage:maporder allowlisted lines. The package is type-checked in
// isolation (imports stubbed, errors swallowed): a map whose type
// cannot be resolved locally is skipped rather than guessed at, so the
// check never false-positives on cross-package types.
func checkMaporder(fset *token.FileSet, files []*ast.File) []finding {
	if len(files) == 0 {
		return nil
	}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	conf := types.Config{
		Importer: &stubImporter{},
		Error:    func(error) {}, // stubbed imports guarantee errors; keep going
	}
	conf.Check(files[0].Name.Name, fset, files, info) //nolint:errcheck — partial info is the point

	var findings []finding
	for _, file := range files {
		allowed := map[int]bool{}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, maporderDirective) {
					line := fset.Position(c.Pos()).Line
					allowed[line] = true
					allowed[line+1] = true
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pos := fset.Position(rs.For)
			if allowed[pos.Line] {
				return true
			}
			findings = append(findings, finding{pos, fmt.Sprintf(
				"maporder: range over a map in an output-producing package iterates in random order; sort the keys, or annotate the line with %s",
				maporderDirective)})
			return true
		})
	}
	return findings
}

// checkWallclock flags wall-clock reads outside //engage:wallclock
// allowlisted lines.
func checkWallclock(fset *token.FileSet, file *ast.File) []finding {
	timeName := ""
	for _, imp := range file.Imports {
		if imp.Path.Value != `"time"` {
			continue
		}
		timeName = "time"
		if imp.Name != nil {
			timeName = imp.Name.Name
		}
	}
	if timeName == "" || timeName == "_" {
		return nil
	}
	var findings []finding
	if timeName == "." {
		pos := fset.Position(file.Package)
		return []finding{{pos, "wallclock: dot-import of time hides wall-clock reads; import it qualified"}}
	}

	// Lines carrying (or directly under) an //engage:wallclock comment
	// are allowed.
	allowed := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, allowDirective) {
				line := fset.Position(c.Pos()).Line
				allowed[line] = true
				allowed[line+1] = true
			}
		}
	}

	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != timeName || !wallclockFuncs[sel.Sel.Name] {
			return true
		}
		pos := fset.Position(sel.Pos())
		if allowed[pos.Line] {
			return true
		}
		findings = append(findings, finding{pos, fmt.Sprintf(
			"wallclock: %s.%s in a virtual-clock package; use the simulated clock, or annotate the line with %s",
			timeName, sel.Sel.Name, allowDirective)})
		return true
	})
	return findings
}

// checkNilGuard verifies that exported pointer-receiver methods on the
// telemetry instrument types do not dereference the receiver before a
// nil guard.
func checkNilGuard(fset *token.FileSet, file *ast.File) []finding {
	var findings []finding
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv == nil || len(fn.Recv.List) != 1 || fn.Body == nil {
			continue
		}
		if !fn.Name.IsExported() {
			continue // internal helpers run only after a caller's guard
		}
		star, ok := fn.Recv.List[0].Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		tid, ok := star.X.(*ast.Ident)
		if !ok || !nilguardTypes[tid.Name] {
			continue
		}
		if len(fn.Recv.List[0].Names) == 0 {
			continue // receiver unnamed, cannot be dereferenced
		}
		recv := fn.Recv.List[0].Names[0].Name
		if recv == "_" {
			continue
		}
		if pos, bad := derefBeforeGuard(fn.Body.List, recv); bad {
			findings = append(findings, finding{fset.Position(pos), fmt.Sprintf(
				"nilguard: method (*%s).%s dereferences receiver %q before checking it for nil; a nil %s must no-op",
				tid.Name, fn.Name.Name, recv, tid.Name)})
		}
	}
	return findings
}

// derefBeforeGuard scans the statements in order and reports the first
// receiver field access occurring before an `if recv == nil` guard.
// Method calls on the receiver do not count: the callee guards.
func derefBeforeGuard(stmts []ast.Stmt, recv string) (token.Pos, bool) {
	for _, st := range stmts {
		if isNilGuard(st, recv) {
			return token.NoPos, false
		}
		if pos, bad := firstDeref(st, recv); bad {
			return pos, true
		}
	}
	return token.NoPos, false
}

func isNilGuard(st ast.Stmt, recv string) bool {
	ifst, ok := st.(*ast.IfStmt)
	if !ok || ifst.Init != nil {
		return false
	}
	bin, ok := ifst.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(bin.X) && isNil(bin.Y)) || (isNil(bin.X) && isRecv(bin.Y))
}

// firstDeref finds a receiver dereference inside one statement:
// a selector or star expression on the receiver that is not the
// function position of a call.
func firstDeref(st ast.Stmt, recv string) (token.Pos, bool) {
	methodCalls := map[*ast.SelectorExpr]bool{}
	ast.Inspect(st, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				methodCalls[sel] = true
			}
		}
		return true
	})
	var pos token.Pos
	ast.Inspect(st, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := e.X.(*ast.Ident); ok && id.Name == recv && !methodCalls[e] {
				pos = e.Pos()
				return false
			}
		case *ast.StarExpr:
			if id, ok := e.X.(*ast.Ident); ok && id.Name == recv {
				pos = e.Pos()
				return false
			}
		}
		return true
	})
	return pos, pos.IsValid()
}
